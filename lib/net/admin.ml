(* The icdbd admin plane: an HTTP/1.0 listener on its own port serving
   scrape and probe endpoints. Kept strictly separate from the wire
   protocol port so an operator's curl, a Prometheus scraper, or a
   load-balancer health check never competes with (or needs to speak)
   the binary protocol, and so the admin surface can be bound to a
   different, more private interface. *)

open Icdb_obs

type t = { http : Expo.http }

let json_escape = Trace.json_escape

let spans_json spans =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"spans\":[";
  List.iteri
    (fun i (s : Trace.span) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "\n{\"id\":%d,\"name\":\"%s\",\"tag\":%s,\"start_ns\":%d,\"dur_ns\":%d}"
        s.Trace.sid
        (json_escape s.Trace.sname)
        (match s.Trace.stag with
         | Some tag -> Printf.sprintf "\"%s\"" (json_escape tag)
         | None -> "null")
        s.Trace.sstart_ns s.Trace.sdur_ns)
    spans;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let slow_json entries =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"slow\":[";
  List.iteri
    (fun i (e : Wire.slow_entry) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "\n{\"cmd\":\"%s\",\"trace\":\"%s\",\"conn\":%d,\"seconds\":%.6f,\
         \"cache\":\"%s\",\"phases\":{"
        (json_escape e.Wire.sl_cmd)
        (json_escape e.Wire.sl_trace)
        e.Wire.sl_conn e.Wire.sl_seconds
        (json_escape e.Wire.sl_cache);
      List.iteri
        (fun j (name, seconds) ->
          if j > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "\"%s\":%.6f" (json_escape name) seconds)
        e.Wire.sl_phases;
      Printf.bprintf buf "},\"plan\":\"%s\"}" (json_escape e.Wire.sl_plan))
    entries;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* The /queryz body: the statement-statistics plane, rendered through
   the shared deterministic emitter in Qstats.snapshot order
   (most-called first). *)
let queryz_json () =
  let entries = Icdb_reldb.Qstats.snapshot () in
  Json.to_string
    (Json.Obj
       [ ("statements", Json.Int (List.length entries));
         ( "queries",
           Json.List
             (List.map
                (fun (e : Icdb_reldb.Qstats.entry) ->
                  Json.Obj
                    [ ("fingerprint", Json.Str e.Icdb_reldb.Qstats.qs_fingerprint);
                      ("plan", Json.Str e.Icdb_reldb.Qstats.qs_plan);
                      ("calls", Json.Int e.Icdb_reldb.Qstats.qs_calls);
                      ("rows", Json.Int e.Icdb_reldb.Qstats.qs_rows);
                      ( "total_ms",
                        Json.float ~prec:3
                          (e.Icdb_reldb.Qstats.qs_total_s *. 1e3) );
                      ( "max_ms",
                        Json.float ~prec:3
                          (e.Icdb_reldb.Qstats.qs_max_s *. 1e3) ) ])
                entries) ) ])

(* How many recent spans /tracez returns; the ring holds far more, but
   an admin page is for a quick look, not a full export. *)
let tracez_limit = 256

(* Readiness: the daemon is taking traffic usefully. Each check renders
   one "name ok|FAIL" line so a failing probe says why. The workspace
   probe actually writes a file — a read-only disk or deleted
   workspace must turn the daemon not-ready, and only a write proves
   writability. *)
let readiness ?replica ~service ~sync () =
  let cfg = Service.config service in
  let checks =
    [ ("accepting", not (Service.stopping service));
      ( "queue",
        Service.queue_depth service < cfg.Service.max_queue );
      ( "workspace",
        let probe =
          Filename.concat (Sync.peek_workspace sync) ".readyz-probe"
        in
        match
          let oc = open_out probe in
          output_string oc "ok";
          close_out oc;
          Sys.remove probe
        with
        | () -> true
        | exception Sys_error _ -> false ) ]
    @
    (* a follower is only failover-ready while its stream is live and
       its lag within bounds: a load balancer probing /readyz must not
       route reads to a stale replica *)
    (match replica with
     | None -> []
     | Some r ->
         let lag_records, lag_seconds = Replica.lag r in
         let rc = Replica.config r in
         [ ("repl_connected", Replica.connected r);
           ( Printf.sprintf "repl_lag_records(%d)" lag_records,
             lag_records <= rc.Replica.max_lag_records );
           ( Printf.sprintf "repl_lag_seconds(%.1f)" lag_seconds,
             lag_seconds <= rc.Replica.max_lag_seconds ) ])
  in
  let ready = List.for_all snd checks in
  let body =
    String.concat ""
      (List.map
         (fun (name, ok) ->
           Printf.sprintf "%s %s\n" name (if ok then "ok" else "FAIL"))
         checks)
  in
  (ready, body)

(* The /connz body: Service's diagnostic connection table through the
   shared deterministic emitter. *)
let connz_json service =
  let rows = Service.conn_table service in
  Json.to_string
    (Json.Obj
       [ ("connections", Json.Int (List.length rows));
         ( "conns",
           Json.List
             (List.map
                (fun (c : Service.conn_info) ->
                  Json.Obj
                    [ ("cid", Json.Int c.Service.ci_cid);
                      ("peer", Json.Str c.Service.ci_peer);
                      ("state", Json.Str c.Service.ci_state);
                      ("wq_bytes", Json.Int c.Service.ci_wq_bytes);
                      ("reqs", Json.Int c.Service.ci_reqs);
                      ("age_s", Json.float ~prec:3 c.Service.ci_age_s);
                      ("idle_s", Json.float ~prec:3 c.Service.ci_idle_s);
                      ("paused_s", Json.float ~prec:3 c.Service.ci_paused_s)
                    ])
                rows) ) ])

let handler ?replica ?recorder ~service ~sync path =
  match path with
  | "/healthz" -> (
      (* liveness, but an honest one: a daemon whose event loop is
         wedged is not alive in any useful sense, and the stall
         watchdog is the component that knows *)
      match Service.watchdog service with
      | false, _ -> Some (Expo.text "ok\n")
      | true, reason ->
          Some (Expo.text ~status:503 ("stall watchdog tripped: " ^ reason ^ "\n")))
  | "/readyz" ->
      let ready, body = readiness ?replica ~service ~sync () in
      Some (Expo.text ~status:(if ready then 200 else 503) body)
  | "/metrics" ->
      Expo.update_process_gauges ();
      Some (Expo.text (Expo.prometheus ()))
  | "/tracez" ->
      (* the span ring is only consistent under the server lock; taking
         the tail via [since] is O(limit), not O(ring) *)
      let spans =
        Sync.with_server sync (fun _ ->
            Trace.since (max 0 (Trace.finished_count () - tracez_limit)))
      in
      Some (Expo.json (spans_json spans))
  | "/slowz" -> Some (Expo.json (slow_json (Service.slow_log service)))
  | "/queryz" -> Some (Expo.json (queryz_json ()))
  | "/statz" -> (
      match Service.sampler service with
      | None ->
          Some
            (Expo.json ~status:404
               "{\"error\": \"telemetry sampler disabled\"}\n")
      | Some s -> Some (Expo.json (Json.to_string (Series.to_json s))))
  | "/connz" -> Some (Expo.json (connz_json service))
  | "/blackboxz" -> (
      match recorder with
      | None ->
          Some
            (Expo.json ~status:404 "{\"error\": \"no flight recorder\"}\n")
      | Some r ->
          Some
            (Expo.json
               (Json.to_string (Recorder.to_json ~reason:"blackboxz" r))))
  | "/" ->
      Some
        (Expo.text
           "icdbd admin endpoints:\n\
            /healthz    liveness (503 while the stall watchdog is tripped)\n\
            /readyz     readiness (accepting, queue, workspace, repl lag)\n\
            /metrics    Prometheus text exposition\n\
            /tracez     recent completed spans (JSON)\n\
            /slowz      slow-query log with plan summaries (JSON)\n\
            /queryz     per-statement query statistics (JSON)\n\
            /statz      telemetry time-series rings (JSON)\n\
            /connz      per-connection table (JSON)\n\
            /blackboxz  flight-recorder dump (JSON)\n")
  | _ -> None

let start ?host ?replica ?recorder ~port ~service ~sync () =
  let http =
    Expo.http_start ?host ~port (handler ?replica ?recorder ~service ~sync)
  in
  Event.info "net: admin endpoint listening on port %d" (Expo.http_port http);
  { http }

let port t = Expo.http_port t.http
let stop t = Expo.http_stop t.http
