(** A blocking icdbd client: one TCP connection, one outstanding
    request at a time, responses matched to requests by id.

    This is what [icdb connect] and the [serve] bench drive; it is
    intentionally tiny — the protocol does support pipelining (ids are
    echoed), but every current caller is call/response. A [t] is not
    thread-safe; give each thread its own connection, as the bench
    does. *)

type t

exception Net_error of string
(** Transport-level failure: connect refused, connection dropped
    mid-reply, unparseable response, or id mismatch. Protocol-level
    errors the server reports are returned as {!Wire.Error} values,
    not exceptions. *)

val connect : ?host:string -> port:int -> unit -> t
(** @raise Net_error when the endpoint cannot be reached. *)

val close : t -> unit
(** Idempotent. *)

val call : t -> Wire.req -> Wire.resp
(** Send one request and block for its response.
    @raise Net_error on transport failures. *)

val exec :
  t -> ?args:Icdb_cql.Exec.arg list -> string ->
  ((string * Icdb_cql.Exec.result) list, Wire.error_code * string) result
(** Run one CQL command remotely: the remote twin of
    {!Icdb_cql.Exec.run}. Server-reported failures (parse errors,
    semantic errors, shedding, timeouts) come back as [Error]. *)

val sql : t -> string -> (Wire.sql_result, Wire.error_code * string) result
val stats : t -> (string, Wire.error_code * string) result
val ping : t -> unit
(** @raise Net_error if the server answers anything but [Pong]. *)

val shutdown_server : t -> unit
(** Ask the server to drain and exit; returns once it acknowledges
    with [Bye]. *)
