(** A blocking icdbd client: one TCP connection, responses matched to
    requests by their echoed id.

    Two modes share the connection machinery: plain call/response
    ({!call} and the typed helpers), and pipelining — {!call_async}
    issues a request without reading and returns a {!ticket};
    {!await} collects a specific ticket's reply, stashing any other
    replies that arrive first (the server answers in completion order).
    {!batch} sends many statements in one frame and gets one
    positionally-matched reply. A [t] is not thread-safe; give each
    thread its own connection, as the bench does. *)

type t

type ticket
(** An outstanding request: proof a reply is owed. Redeem exactly once
    with {!await}. *)

exception Net_error of string
(** Transport-level failure: connect refused, connection dropped
    mid-reply, unparseable response, or id mismatch. Protocol-level
    errors the server reports are returned as {!Wire.Error} values,
    not exceptions. *)

val connect :
  ?host:string -> port:int -> ?retries:int -> ?backoff_s:float -> unit -> t
(** Connect, ignoring SIGPIPE process-wide first (a dead peer then
    surfaces as EPIPE on the write, never a signal). [retries] (default
    0) extra attempts are made when the failure is transient — refused,
    reset, timed out, unreachable — sleeping a capped exponential
    backoff starting at [backoff_s] (default 0.1 s, doubling to at most
    5 s) with jitter between attempts; the replication follower's
    reconnect loop rides on this.
    @raise Net_error when the endpoint cannot be reached. *)

val fd : t -> Unix.file_descr
(** The underlying socket, for callers that need to [select] on
    server-pushed frames (the replication follower). Reading from it
    directly and using {!call} concurrently is a bug. *)

val close : t -> unit
(** Idempotent. *)

val call : ?ctx:Wire.ctx -> t -> Wire.req -> Wire.resp
(** Send one request and block for its response. [ctx] defaults to
    {!Wire.no_ctx}. Equivalent to [await t (call_async t req)].
    @raise Net_error on transport failures. *)

val call_async : ?ctx:Wire.ctx -> t -> Wire.req -> ticket
(** Send one request without waiting for its reply; any number may be
    in flight on the connection at once.
    @raise Net_error on send failure. *)

val await : t -> ticket -> Wire.resp
(** Block until this ticket's reply is in hand. Replies arrive in the
    server's completion order — whatever else turns up first is kept
    for its own [await]. Awaiting the same ticket twice, or a ticket
    from another connection, raises {!Net_error} (no reply will ever
    match).
    @raise Net_error on transport failures or a server-initiated
    close ([Bye]) while replies are still owed. *)

val batch :
  t -> ?trace_id:string -> ?timeout_s:float -> Wire.batch_entry list ->
  (Wire.batch_result list, Wire.error_code * string) result
(** Send many CQL/SQL statements in one [Batch] frame; the reply holds
    exactly one result per entry, in entry order, with failures
    isolated to their entry ([Berror]). The whole batch is one
    admission-control unit server-side: [Error] is returned when the
    batch as a whole was refused (shed, timed out, shutting down).
    @raise Net_error if the reply arity does not match. *)

val exec :
  t -> ?trace_id:string -> ?timeout_s:float ->
  ?args:Icdb_cql.Exec.arg list -> string ->
  ((string * Icdb_cql.Exec.result) list, Wire.error_code * string) result
(** Run one CQL command remotely: the remote twin of
    {!Icdb_cql.Exec.run}. [trace_id] tags the server-side spans of this
    request (fetch them back with {!fetch_trace}); [timeout_s] is a
    queue deadline. Server-reported failures (parse errors, semantic
    errors, shedding, timeouts) come back as [Error]. *)

val sql :
  t -> ?trace_id:string -> string ->
  (Wire.sql_result, Wire.error_code * string) result
(** [trace_id] tags the server-side spans as in {!exec}. *)

val stats : t -> (Wire.stats_payload, Wire.error_code * string) result
(** The server's full metrics registry plus its slow-query log. *)

val fetch_trace :
  t -> string -> (Wire.remote_span list, Wire.error_code * string) result
(** The server-side spans tagged with this trace id, oldest first —
    only spans this trace id owns, never another connection's. *)

val ping : t -> unit
(** @raise Net_error if the server answers anything but [Pong]. *)

val shutdown_server : t -> unit
(** Ask the server to drain and exit; returns once it acknowledges
    with [Bye]. *)

val merge_remote_spans :
  local:Icdb_obs.Trace.span list -> remote:Wire.remote_span list ->
  Icdb_obs.Trace.span list
(** One span list for Chrome export: client spans re-tagged "client",
    server spans re-tagged "server" with their ids moved to a disjoint
    range, and the whole server group time-shifted to sit centered
    inside the client window (the two processes' monotonic clocks share
    no base, so only relative placement is meaningful). *)
