(** The replication follower: a local read-only ICDB server kept in
    sync with a primary by subscribing to its journal stream.

    The follower's replication cursor {e is} its own journal:
    [Icdb.Server.apply_replicated] appends every shipped record
    verbatim after applying it, so the local journal's [next_seq]
    always names the next record to fetch, and a crash at any point
    restarts — through the ordinary {!Icdb.Server.reopen} recovery
    path — at exactly the right place. No separate cursor file exists
    to get out of sync.

    Catch-up: a cursor still inside the primary's journal window
    streams from there; a cursor predating the primary's last
    checkpoint truncation (or a virgin workspace) fetches a full
    checkpoint — snapshot, netlists, IIF sources — installs it with
    the journal base seeded to the checkpoint cursor, and reopens.
    Mid-life, the same case swaps the rebuilt server in under the
    service lock ({!Sync.replace}) while queries keep being served.

    The stream breaking (dead primary, shed, torn frame, gap) triggers
    reconnection with capped, jittered exponential backoff, riding the
    retry support in {!Client.connect}.

    Follower-side metrics, under [repl.*]: [lag_records],
    [lag_seconds], [connected] gauges; [batches_applied],
    [records_applied], [reconnects], [checkpoints_fetched] counters. *)

type config = {
  host : string;               (** primary's host *)
  port : int;                  (** primary's wire-protocol port *)
  connect_retries : int;       (** extra connect attempts at bootstrap *)
  backoff_s : float;           (** initial reconnect backoff (doubles,
                                   capped at 5 s, jittered) *)
  max_lag_records : int;       (** {!ready} bound on record lag *)
  max_lag_seconds : float;     (** {!ready} bound on staleness; also
                                   sizes the silent-stream grace *)
}

val default_config : config
(** 127.0.0.1:7601, 5 connect retries, 0.1 s backoff, 1000-record /
    10 s readiness bounds. *)

exception Repl_error of string

type t

val create : ?verify:bool -> ?config:config -> workspace:string -> unit -> t
(** Bootstrap the local follower server (reopen an existing workspace,
    or fetch and install a checkpoint from the primary into a fresh
    one) without starting the stream. [verify] is passed to the
    server rebuild (default false: the primary already verified every
    netlist it shipped).
    @raise Repl_error when the primary refuses (not durable, or itself
    a follower) or cannot be reached within [connect_retries]. *)

val sync : t -> Sync.t
(** The lock wrapper around the follower's server — start the local
    read-only {!Service} and {!Admin} endpoints on this. After a
    mid-life re-sync it transparently holds the rebuilt server. *)

val run : t -> unit
(** Start the streaming loop in its own thread: subscribe, apply
    batches, reconnect forever until {!stop}.
    @raise Repl_error if already running. *)

val stop : t -> unit
(** Ask the loop to stop and join it. Idempotent. *)

val config : t -> config
(** The configuration the replica was created with. *)

val connected : t -> bool
(** True while a subscription is live. *)

val cursor : t -> int
(** The local journal's [next_seq] — the next record the follower will
    ask for. *)

val lag : t -> int * float
(** [(records, seconds)]: how many records behind the primary's last
    advertised [next_seq], and how long since the follower was last
    fully caught up. Also refreshes the [repl.lag_*] gauges. *)

val ready : t -> bool
(** Failover-ready: connected, record lag within [max_lag_records] and
    staleness within [max_lag_seconds]. {!Admin}'s /readyz gates on
    this when given a replica. *)
