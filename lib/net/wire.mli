(** The icdbd wire protocol: length-prefixed, versioned binary frames.

    A frame on the wire is a 4-byte big-endian payload length followed
    by the payload:

    {v
      u32  payload length          (at most {!max_payload})
      u8   protocol version        (stamped per frame kind; see below)
      u8   frame kind
      i64  request id              (echoed verbatim in the response)
      ...  request context         (requests only: trace id + deadline)
      ...  kind-specific body
    v}

    Since v2, every request carries a {!ctx} — a client-generated trace
    id string (empty = none) and a deadline in seconds (0 = none) —
    between the id and the body, so trace-context propagation works
    uniformly across all request kinds.

    Scalars are big-endian; a string is a u32 byte count followed by
    the bytes; a list is a u32 element count followed by the elements;
    a float is the IEEE-754 bits as an i64. Requests and responses use
    disjoint kind bytes so a peer speaking the wrong direction is
    caught as {!Malformed} rather than misparsed.

    Decoding classifies failures by whether the stream is still
    framable: a bad version byte or a garbled body inside a
    correctly-delimited payload is {e recoverable} (the frame was fully
    consumed; the server answers with a structured [Error] frame and
    the connection lives on), while a truncated or oversized frame
    means byte-level sync is lost and the connection must close.

    v4 adds pipelining: a [Batch] request carries many CQL/SQL entries
    under one framing header and is answered by one vectorized
    [Batch_reply] (per-entry results in entry order, errors isolated
    to their entry), and servers may answer {e single} requests out of
    order — responses are matched to requests by the i64 id, never by
    arrival order. v4 is a byte-level superset of v3, so the decoder
    accepts both ({!min_protocol_version}).

    v5 appends a query-plan summary string to each slow-log entry
    inside [Stats_report] ({!slow_entry.sl_plan}).

    Version stamping is per frame kind: each kind is stamped with the
    version that last changed its payload — [Stats_report] carries 5,
    [Batch]/[Batch_reply] carry 4, every other kind stays stamped 3.
    A real v3 binary accepts only its own version, so an upgraded peer
    must keep emitting 3 on the kinds v3 defined for rolling upgrades
    to work in both directions; the v5 stamp on [Stats_report] makes
    an old peer classify the reshaped payload as the recoverable
    {!Bad_version} instead of misparsing it, while this decoder reads
    the plan field only from frames stamped >= 5 (defaulting it to
    [""]), so an old server's reports still decode. *)

val protocol_version : int
(** The newest version this codec speaks. Individual kinds are stamped
    with the version that last changed them (see the stamping note
    above). *)

val min_protocol_version : int
(** Oldest version the decoder still accepts. Frames older than this
    classify as the recoverable {!Bad_version}. *)

val max_payload : int

(** {1 Frame bodies} *)

type ctx = { trace_id : string; timeout_s : float }
(** Per-request context carried by every v2 request: [trace_id] tags
    all server-side spans produced while serving the request (empty
    string = no tracing requested), and [timeout_s] is a client-set
    deadline — a request that waits in the server queue longer than
    this is answered with [Error Timeout] instead of being executed
    (0 = no deadline). *)

val no_ctx : ctx
(** [{ trace_id = ""; timeout_s = 0.0 }] — no tracing, no deadline. *)

type batch_entry =
  | Bcql of { text : string; args : Icdb_cql.Exec.arg list }
  | Bsql of string
(** One element of a v4 {!req.Batch}: the two query shapes a client can
    vectorize. Each entry succeeds or fails on its own. *)

type req =
  | Ping
  | Cql of { text : string; args : Icdb_cql.Exec.arg list }
      (** a CQL command string; [args] fill its %-slots in order *)
  | Sql of string  (** a SQL statement against the metadata database *)
  | Stats          (** full metrics registry + slow-query log *)
  | Trace_fetch of string
      (** retrieve the server-side spans tagged with this trace id *)
  | Shutdown       (** drain in-flight requests, checkpoint, exit *)
  | Subscribe of { cursor : int }
      (** v3: subscribe this connection to the primary's replication
          stream from journal sequence [cursor] (-1 = no local state,
          send a full checkpoint). The connection becomes a push
          stream; see the replication frames in {!resp}. *)
  | Batch of batch_entry list
      (** v4: many queries under one framing header, answered by a
          single {!resp.Batch_reply} with one {!batch_result} per entry
          in entry order. The whole batch executes on one worker as one
          admission-control unit (one queue slot, one deadline), so a
          batch amortizes framing, syscalls, and scheduling — not just
          latency. *)

type sql_result =
  | Affected of int
  | Relation of { cols : string list; rows : string list list }

type remote_span = {
  rs_id : int;
  rs_parent : int option;  (** another [rs_id] in the same reply *)
  rs_name : string;
  rs_tag : string;
  rs_start_ns : int;       (** server monotonic clock — not comparable
                               across processes; align before merging *)
  rs_dur_ns : int;
  rs_attrs : (string * string) list;
}
(** A completed server-side span, flattened for the wire. *)

type hist_summary = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

type slow_entry = {
  sl_cmd : string;             (** command kind, e.g. "cql" *)
  sl_trace : string;           (** trace id the client sent, or the
                                   server-assigned fallback tag *)
  sl_conn : int;
  sl_seconds : float;
  sl_cache : string;           (** "hit" | "miss" | "-" *)
  sl_phases : (string * float) list;  (** per-phase seconds *)
  sl_plan : string;            (** v5: query-plan summary, e.g.
                                   ["indexed(pts.key)"]; [""] when the
                                   request had no plan or the entry
                                   came from a pre-v5 peer *)
}

type stats_payload = {
  sp_text : string;  (** pre-rendered cache summary line *)
  sp_counters : (string * int) list;
  sp_gauges : (string * float) list;
  sp_hists : hist_summary list;
  sp_slow : slow_entry list;
}
(** Everything the server knows about itself: the full [Metrics]
    registry plus the recent slow-query log. *)

type error_code =
  | Parse_error       (** CQL syntax or slot/argument mismatch *)
  | Exec_error        (** semantic failure inside the server *)
  | Sql_error
  | Protocol_error    (** malformed or oversized frame *)
  | Version_mismatch
  | Overloaded        (** connection refused or request shed *)
  | Timeout           (** request aged out of the queue *)
  | Shutting_down
  | Internal
  | Read_only         (** a mutating command sent to a follower *)

type batch_result =
  | Bresults of (string * Icdb_cql.Exec.result) list
  | Bsql_result of sql_result
  | Berror of { code : error_code; message : string }
(** Per-entry outcome inside a {!resp.Batch_reply}: positionally
    matched to the {!batch_entry} list of the request, so an error in
    entry [k] never disturbs entries [k+1..]. *)

and resp =
  | Pong
  | Results of (string * Icdb_cql.Exec.result) list
      (** CQL ?-slot bindings, every shape {!Icdb_cql.Exec.run} produces *)
  | Sql_result of sql_result
  | Stats_report of stats_payload
  | Spans of remote_span list  (** answer to [Trace_fetch] *)
  | Error of { code : error_code; message : string }
  | Bye  (** the server is closing this connection deliberately *)
  | Journal_batch of {
      jb_first : int;                  (** seq of the first record *)
      jb_next : int;                   (** primary's next_seq at send
                                           time — the follower's lag is
                                           [jb_next] minus its cursor *)
      jb_records : string list;        (** exact journal line encodings,
                                           CRC included, so followers
                                           re-verify end to end *)
      jb_files : (string * string) list;
          (** workspace files the records depend on: basename ->
              contents (exact netlists, IIF sources) *)
    }
      (** v3: a slice of the primary's journal, pushed to a subscribed
          follower. An empty batch is a heartbeat carrying the
          primary's cursor. *)
  | Checkpoint_offer of { co_cursor : int; co_files : int }
      (** v3: the follower's cursor predates the primary's last
          truncation (or it asked for a full sync); [co_files]
          {!Checkpoint_chunk} streams follow, after which the journal
          stream continues from [co_cursor]. *)
  | Checkpoint_chunk of { cc_name : string; cc_data : string; cc_last : bool }
      (** v3: one piece of a checkpoint file; consecutive chunks with
          the same [cc_name] concatenate, [cc_last] marks the end of
          the whole checkpoint. *)
  | Repl_error of string
      (** v3: the subscription is over (slow-follower shed, primary not
          durable, ...); the follower should back off and reconnect. *)
  | Batch_reply of batch_result list
      (** v4: the vectorized answer to a {!req.Batch}. *)

type 'a frame = { id : int; body : 'a }

val error_code_to_string : error_code -> string

(** {1 Encoding} *)

val encode_request : ?ctx:ctx -> req frame -> string
(** Full frame bytes, length header included. [ctx] defaults to
    {!no_ctx}. *)

val encode_response : resp frame -> string

(** {1 Decoding} *)

type decode_error =
  | Closed  (** clean EOF between frames *)
  | Truncated of string
      (** EOF or short read inside a frame: fatal, close *)
  | Oversized of int
      (** declared payload length beyond {!max_payload}: fatal, close *)
  | Bad_version of { id : int option; got : int }
      (** recoverable: answer [Error Version_mismatch] and carry on *)
  | Malformed of { id : int option; reason : string }
      (** recoverable: answer [Error Protocol_error] and carry on.
          [id] is recovered from the fixed header offset when the
          payload is long enough to hold one. *)

val decode_error_to_string : decode_error -> string

val decode_request : string -> (req frame * ctx, decode_error) result
(** Decode one payload (length header already stripped). *)

val decode_response : string -> (resp frame, decode_error) result

(** {1 Incremental framing}

    The event loop reads whatever bytes the kernel has ready; a frame
    can arrive split at any byte boundary or glued to its neighbors.
    {!Dechunk} reassembles the length-prefixed stream so the field-level
    decoders above only ever see complete payloads — partial reads are
    handled once here, not at every field boundary. *)

module Dechunk : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t src off n] appends [n] raw bytes from [src] starting at
      [off]. Amortized O(n); the internal buffer grows as needed. *)

  val feed_string : t -> string -> unit

  val next : t -> [ `Payload of string | `Await | `Oversized of int ]
  (** Pull the next complete payload (length header stripped — feed it
      to {!decode_request}/{!decode_response}). [`Await] = not enough
      bytes yet. [`Oversized n] = the next length header declares [n]
      outside [0, {!max_payload}]: byte sync is unrecoverable and the
      connection must close ([`Oversized] is sticky — detected from the
      4 header bytes alone, before any body is buffered). Call in a
      loop after each [feed]: one read may complete many frames. *)

  val buffered : t -> int
  (** Bytes fed but not yet returned by {!next} — nonzero at EOF means
      the peer died mid-frame (the blocking transport's [Truncated]). *)
end

(** {1 Blocking transport helpers} *)

val write_frame : Unix.file_descr -> string -> unit
(** Write all bytes, retrying on [EINTR].
    @raise Unix.Unix_error as [Unix.write] does (e.g. [EPIPE]). *)

val read_request : Unix.file_descr -> (req frame * ctx, decode_error) result
(** Read exactly one frame. Never raises on EOF — that is [Closed] or
    [Truncated] — but lets genuine socket errors escape as
    [Unix.Unix_error]. *)

val read_response : Unix.file_descr -> (resp frame, decode_error) result
