(** The icdbd wire protocol: length-prefixed, versioned binary frames.

    A frame on the wire is a 4-byte big-endian payload length followed
    by the payload:

    {v
      u32  payload length          (at most {!max_payload})
      u8   protocol version        ({!protocol_version})
      u8   frame kind
      i64  request id              (echoed verbatim in the response)
      ...  kind-specific body
    v}

    Scalars are big-endian; a string is a u32 byte count followed by
    the bytes; a list is a u32 element count followed by the elements;
    a float is the IEEE-754 bits as an i64. Requests and responses use
    disjoint kind bytes so a peer speaking the wrong direction is
    caught as {!Malformed} rather than misparsed.

    Decoding classifies failures by whether the stream is still
    framable: a bad version byte or a garbled body inside a
    correctly-delimited payload is {e recoverable} (the frame was fully
    consumed; the server answers with a structured [Error] frame and
    the connection lives on), while a truncated or oversized frame
    means byte-level sync is lost and the connection must close. *)

val protocol_version : int
val max_payload : int

(** {1 Frame bodies} *)

type req =
  | Ping
  | Cql of { text : string; args : Icdb_cql.Exec.arg list }
      (** a CQL command string; [args] fill its %-slots in order *)
  | Sql of string  (** a SQL statement against the metadata database *)
  | Stats          (** rendered server + network metrics *)
  | Shutdown       (** drain in-flight requests, checkpoint, exit *)

type sql_result =
  | Affected of int
  | Relation of { cols : string list; rows : string list list }

type error_code =
  | Parse_error       (** CQL syntax or slot/argument mismatch *)
  | Exec_error        (** semantic failure inside the server *)
  | Sql_error
  | Protocol_error    (** malformed or oversized frame *)
  | Version_mismatch
  | Overloaded        (** connection refused or request shed *)
  | Timeout           (** request aged out of the queue *)
  | Shutting_down
  | Internal

type resp =
  | Pong
  | Results of (string * Icdb_cql.Exec.result) list
      (** CQL ?-slot bindings, every shape {!Icdb_cql.Exec.run} produces *)
  | Sql_result of sql_result
  | Stats_report of string
  | Error of { code : error_code; message : string }
  | Bye  (** the server is closing this connection deliberately *)

type 'a frame = { id : int; body : 'a }

val error_code_to_string : error_code -> string

(** {1 Encoding} *)

val encode_request : req frame -> string
(** Full frame bytes, length header included. *)

val encode_response : resp frame -> string

(** {1 Decoding} *)

type decode_error =
  | Closed  (** clean EOF between frames *)
  | Truncated of string
      (** EOF or short read inside a frame: fatal, close *)
  | Oversized of int
      (** declared payload length beyond {!max_payload}: fatal, close *)
  | Bad_version of { id : int option; got : int }
      (** recoverable: answer [Error Version_mismatch] and carry on *)
  | Malformed of { id : int option; reason : string }
      (** recoverable: answer [Error Protocol_error] and carry on.
          [id] is recovered from the fixed header offset when the
          payload is long enough to hold one. *)

val decode_error_to_string : decode_error -> string

val decode_request : string -> (req frame, decode_error) result
(** Decode one payload (length header already stripped). *)

val decode_response : string -> (resp frame, decode_error) result

(** {1 Blocking transport helpers} *)

val write_frame : Unix.file_descr -> string -> unit
(** Write all bytes, retrying on [EINTR].
    @raise Unix.Unix_error as [Unix.write] does (e.g. [EPIPE]). *)

val read_request : Unix.file_descr -> (req frame, decode_error) result
(** Read exactly one frame. Never raises on EOF — that is [Closed] or
    [Truncated] — but lets genuine socket errors escape as
    [Unix.Unix_error]. *)

val read_response : Unix.file_descr -> (resp frame, decode_error) result
