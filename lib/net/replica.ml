(* The replication follower: keep a local read-only ICDB server in
   sync with a primary by subscribing to its journal stream.

   Life of a follower:
   - [create] bootstraps the local server. A workspace that already
     holds a journal or snapshot is reopened through the ordinary crash
     recovery path (a follower restart is just a crash restart); a
     fresh workspace first fetches a full checkpoint from the primary
     (snapshot + netlists + IIF sources), installs it with the
     journal's sequence base set to the checkpoint cursor, and reopens.
   - [run] starts the streaming loop: subscribe at the local journal's
     [next_seq], apply each pushed batch through
     [Icdb.Server.apply_replicated] — which appends every shipped
     record verbatim to the local journal, so the cursor IS the local
     journal and survives crashes for free — and reconnect with capped,
     jittered exponential backoff whenever the stream breaks.
   - A primary that answers the subscribe with a checkpoint (our cursor
     predates its last truncation) triggers a full re-sync in place:
     the old state files are dropped, the checkpoint installed, a new
     server reopened and swapped in under the service's lock
     ({!Sync.replace}) while queries keep being served.

   Lag is tracked against the primary's [next_seq], which every batch
   (including the 1 Hz heartbeats) carries; [ready] gates the /readyz
   endpoint on connectedness and on lag in both records and seconds. *)

open Icdb_obs

type config = {
  host : string;
  port : int;
  connect_retries : int;
  backoff_s : float;
  max_lag_records : int;
  max_lag_seconds : float;
}

let default_config =
  { host = "127.0.0.1";
    port = 7601;
    connect_retries = 5;
    backoff_s = 0.1;
    max_lag_records = 1_000;
    max_lag_seconds = 10.0 }

exception Repl_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Repl_error s)) fmt

(* Raised inside a streaming session to force a reconnect without
   tearing the follower down. *)
exception Reconnect of string

type t = {
  rcfg : config;
  workspace : string;
  verify : bool;
  sync : Sync.t;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
  (* Loop → readiness signalling; single-word reads, no lock needed. *)
  mutable connected : bool;
  mutable primary_next : int;     (* primary next_seq from the last batch *)
  mutable caught_up_at : float;   (* last time local cursor = primary_next *)
  mutable started_at : float;
}

let g_lag_records = Metrics.gauge "repl.lag_records"
let g_lag_seconds = Metrics.gauge "repl.lag_seconds"
let g_connected = Metrics.gauge "repl.connected"
let c_batches_applied = Metrics.counter "repl.batches_applied"
let c_records_applied = Metrics.counter "repl.records_applied"
let h_apply = Metrics.histogram "repl.apply_s"
let c_reconnects = Metrics.counter "repl.reconnects"
let c_checkpoints_fetched = Metrics.counter "repl.checkpoints_fetched"

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Workspace plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let journal_name = "icdb.journal"
let snapshot_name = "icdb.snapshot"

(* Shipped names are basenames by contract; enforcing it here keeps a
   malicious or corrupt primary from writing outside the workspace. *)
let write_file_atomic dir name data =
  let name = Filename.basename name in
  if name <> "" && name <> "." && name <> ".." then begin
    let path = Filename.concat dir name in
    let tmp = path ^ ".part" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc data);
    Sys.rename tmp path
  end

let local_next t =
  Sync.with_server t.sync (fun server ->
      match Icdb_reldb.Db.journal (Icdb.Server.db server) with
      | Some j -> Icdb_reldb.Journal.next_seq j
      | None -> fail "follower server has no journal attached")

let update_lag t =
  let lag_records =
    if t.primary_next < 0 then 0 else max 0 (t.primary_next - local_next t)
  in
  let lag_seconds = now () -. t.caught_up_at in
  Metrics.set g_lag_records (float_of_int lag_records);
  Metrics.set g_lag_seconds lag_seconds;
  Metrics.set g_connected (if t.connected then 1.0 else 0.0);
  (lag_records, lag_seconds)

(* ------------------------------------------------------------------ *)
(* Checkpoint transfer (follower side)                                 *)
(* ------------------------------------------------------------------ *)

(* Drain [Checkpoint_chunk] frames into workspace files until the
   terminal chunk. Chunks of one file arrive contiguously, so a single
   pending buffer suffices. *)
let receive_checkpoint_chunks fd ~workspace =
  let pending_name = ref "" in
  let pending = Buffer.create 4096 in
  let flush_pending () =
    if !pending_name <> "" then
      write_file_atomic workspace !pending_name (Buffer.contents pending);
    Buffer.clear pending;
    pending_name := ""
  in
  let rec loop () =
    match Wire.read_response fd with
    | Error e -> fail "checkpoint transfer failed: %s" (Wire.decode_error_to_string e)
    | Ok { Wire.body = Wire.Checkpoint_chunk { cc_name; cc_data; cc_last }; _ }
      ->
        if cc_name <> !pending_name then begin
          flush_pending ();
          pending_name := cc_name
        end;
        Buffer.add_string pending cc_data;
        if cc_last then flush_pending () else loop ()
    | Ok { Wire.body = Wire.Repl_error msg; _ } ->
        fail "primary refused mid-checkpoint: %s" msg
    | Ok { Wire.body = Wire.Bye; _ } ->
        fail "primary closed the connection mid-checkpoint"
    | Ok _ -> loop () (* unrelated frame; skip *)
  in
  loop ()

(* Install a checkpoint fetched at [cursor]: drop the old durable state
   so nothing stale survives, then seed the journal's sequence base.
   Crash-safe by retry: a crash part-way leaves either no journal and
   no snapshot (fresh fetch next time) or a journal whose base is 0 and
   thus below the primary's (checkpoint again next time). *)
let install_checkpoint ~workspace ~cursor =
  List.iter
    (fun name ->
      let p = Filename.concat workspace name in
      if Sys.file_exists p then Sys.remove p)
    [ journal_name; journal_name ^ ".seq" ];
  Icdb_reldb.Journal.install_base (Filename.concat workspace journal_name) cursor

(* Subscribe with a hopeless cursor to make the primary ship a full
   checkpoint; returns the cursor the checkpoint was taken at. Used by
   [create] on a virgin workspace (the connection is then discarded —
   the streaming session re-subscribes from the installed cursor). *)
let fetch_checkpoint ~rcfg ~workspace =
  let c =
    Client.connect ~host:rcfg.host ~port:rcfg.port
      ~retries:rcfg.connect_retries ~backoff_s:rcfg.backoff_s ()
  in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let fd = Client.fd c in
      Wire.write_frame fd
        (Wire.encode_request { Wire.id = 1; body = Wire.Subscribe { cursor = -1 } });
      let rec first () =
        match Wire.read_response fd with
        | Error e ->
            fail "subscribe failed: %s" (Wire.decode_error_to_string e)
        | Ok { Wire.body = Wire.Checkpoint_offer { co_cursor; co_files }; _ } ->
            Event.info "repl: fetching checkpoint (%d files, cursor %d)"
              co_files co_cursor;
            receive_checkpoint_chunks fd ~workspace;
            Metrics.incr c_checkpoints_fetched;
            co_cursor
        | Ok { Wire.body = Wire.Repl_error msg; _ } ->
            fail "primary refused subscription: %s" msg
        | Ok { Wire.body = Wire.Error { message; _ }; _ } ->
            fail "primary rejected subscribe: %s" message
        | Ok { Wire.body = Wire.Bye; _ } ->
            fail "primary closed the connection"
        | Ok _ -> first ()
      in
      first ())

(* ------------------------------------------------------------------ *)
(* Bootstrap                                                           *)
(* ------------------------------------------------------------------ *)

let reopen_follower ~verify ~workspace =
  let server, report = Icdb.Server.reopen ~verify ~workspace () in
  if report.Icdb.Server.rr_entries_replayed > 0
     || report.Icdb.Server.rr_torn_tail
  then
    Event.info "repl: follower recovery replayed %d entries%s"
      report.Icdb.Server.rr_entries_replayed
      (if report.Icdb.Server.rr_torn_tail then " (torn tail cut)" else "");
  server

let create ?(verify = false) ?(config = default_config) ~workspace () =
  if not (Sys.file_exists workspace) then Unix.mkdir workspace 0o755;
  let have_state =
    Sys.file_exists (Filename.concat workspace journal_name)
    || Sys.file_exists (Filename.concat workspace snapshot_name)
  in
  if not have_state then begin
    let cursor = fetch_checkpoint ~rcfg:config ~workspace in
    install_checkpoint ~workspace ~cursor
  end;
  let server = reopen_follower ~verify ~workspace in
  let sync = Sync.wrap server in
  let t =
    { rcfg = config;
      workspace;
      verify;
      sync;
      stop_flag = Atomic.make false;
      thread = None;
      connected = false;
      primary_next = -1;
      caught_up_at = now ();
      started_at = now () }
  in
  ignore (update_lag t);
  t

let sync t = t.sync

(* ------------------------------------------------------------------ *)
(* Streaming                                                           *)
(* ------------------------------------------------------------------ *)

(* Apply one pushed batch under the service lock. Records the follower
   already has (an overlap after a reconnect race) are skipped; a gap
   means the stream and our cursor diverged, so reconnect and let the
   subscribe handshake sort it out. *)
let apply_batch t ~jb_first ~jb_next ~jb_records ~jb_files =
  let t0 = now () in
  let applied =
    Sync.with_server t.sync (fun server ->
        let j =
          match Icdb_reldb.Db.journal (Icdb.Server.db server) with
          | Some j -> j
          | None -> fail "follower server lost its journal"
        in
        let next = Icdb_reldb.Journal.next_seq j in
        if jb_first > next then
          raise
            (Reconnect
               (Printf.sprintf "stream gap: batch starts at %d, local cursor %d"
                  jb_first next));
        (* the files a record depends on must exist before the record's
           in-memory rebuild runs *)
        List.iter
          (fun (name, data) -> write_file_atomic t.workspace name data)
          jb_files;
        let applied = ref 0 in
        List.iteri
          (fun i line ->
            let seq = jb_first + i in
            if seq >= Icdb_reldb.Journal.next_seq j then begin
              let line =
                (* records ship in exact journal line encoding,
                   trailing newline included *)
                let n = String.length line in
                if n > 0 && line.[n - 1] = '\n' then String.sub line 0 (n - 1)
                else line
              in
              match Icdb_reldb.Journal.decode_line line with
              | None ->
                  raise
                    (Reconnect
                       (Printf.sprintf "record %d failed its checksum" seq))
              | Some entry ->
                  Icdb.Server.apply_replicated server entry;
                  incr applied
            end)
          jb_records;
        !applied)
  in
  if applied > 0 then begin
    Metrics.incr ~by:applied c_records_applied
  end;
  Metrics.incr c_batches_applied;
  (* heartbeats (empty batches) are excluded: the histogram should show
     what applying shipped records costs, not the idle poll cadence *)
  if jb_records <> [] then Metrics.observe h_apply (now () -. t0);
  t.primary_next <- jb_next;
  if local_next t >= jb_next then t.caught_up_at <- now ();
  ignore (update_lag t)

(* A mid-stream checkpoint (our cursor predates the primary's last
   truncation): install it next to the live state, rebuild a fresh
   server, and swap it in under the lock while queries keep flowing. *)
let resync_from_checkpoint t fd co_cursor co_files =
  Event.warn "repl: cursor too old; re-syncing from a full checkpoint (%d files)"
    co_files;
  receive_checkpoint_chunks fd ~workspace:t.workspace;
  Metrics.incr c_checkpoints_fetched;
  install_checkpoint ~workspace:t.workspace ~cursor:co_cursor;
  Sync.replace t.sync (fun _old -> reopen_follower ~verify:t.verify ~workspace:t.workspace);
  t.primary_next <- co_cursor;
  t.caught_up_at <- now ();
  ignore (update_lag t)

(* One connected session: subscribe at the local cursor, then pump
   pushed frames until the stream breaks or goes silent. *)
let session t =
  let cursor = local_next t in
  let c =
    Client.connect ~host:t.rcfg.host ~port:t.rcfg.port ~retries:0
      ~backoff_s:t.rcfg.backoff_s ()
  in
  Fun.protect
    ~finally:(fun () ->
      Client.close c;
      t.connected <- false;
      ignore (update_lag t))
    (fun () ->
      let fd = Client.fd c in
      Wire.write_frame fd
        (Wire.encode_request { Wire.id = 1; body = Wire.Subscribe { cursor } });
      Event.info "repl: subscribed to %s:%d at cursor %d" t.rcfg.host
        t.rcfg.port cursor;
      t.connected <- true;
      ignore (update_lag t);
      (* heartbeats come at 1 Hz; a stream silent for much longer than
         the lag budget is a dead primary even if TCP has not noticed *)
      let grace = Float.max 5.0 (2.0 *. t.rcfg.max_lag_seconds) in
      let last_frame = ref (now ()) in
      let rec pump () =
        if not (Atomic.get t.stop_flag) then begin
          (match Unix.select [ fd ] [] [] 1.0 with
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
           | [], _, _ ->
               if now () -. !last_frame > grace then
                 raise
                   (Reconnect
                      (Printf.sprintf "stream silent for %.0f s" grace))
           | _ -> (
               match Wire.read_response fd with
               | Error e ->
                   raise (Reconnect (Wire.decode_error_to_string e))
               | Ok { Wire.body; _ } -> (
                   last_frame := now ();
                   match body with
                   | Wire.Journal_batch { jb_first; jb_next; jb_records; jb_files }
                     ->
                       apply_batch t ~jb_first ~jb_next ~jb_records ~jb_files
                   | Wire.Checkpoint_offer { co_cursor; co_files } ->
                       resync_from_checkpoint t fd co_cursor co_files
                   | Wire.Repl_error msg ->
                       raise (Reconnect ("primary dropped us: " ^ msg))
                   | Wire.Bye -> raise (Reconnect "primary said goodbye")
                   | _ -> () (* unrelated frame; skip *))));
          ignore (update_lag t);
          pump ()
        end
      in
      pump ())

(* Sleep [total] in small slices so [stop] stays responsive. *)
let interruptible_sleep t total =
  let deadline = now () +. total in
  while (not (Atomic.get t.stop_flag)) && now () < deadline do
    Unix.sleepf 0.05
  done

let loop t =
  let delay = ref t.rcfg.backoff_s in
  while not (Atomic.get t.stop_flag) do
    let t0 = now () in
    (try session t with
     | Reconnect reason ->
         Event.warn "repl: stream interrupted: %s; reconnecting" reason
     | Repl_error msg | Client.Net_error msg ->
         Event.warn "repl: session failed: %s; reconnecting" msg
     | Icdb.Server.Icdb_error msg ->
         Event.warn "repl: apply failed: %s; reconnecting" msg
     | Unix.Unix_error (e, _, _) ->
         Event.warn "repl: session failed: %s; reconnecting"
           (Unix.error_message e)
     (* injected faults and anything else unforeseen must reconnect,
        not silently kill the streaming thread *)
     | e ->
         Event.warn "repl: session failed: %s; reconnecting"
           (Printexc.to_string e));
    t.connected <- false;
    ignore (update_lag t);
    if not (Atomic.get t.stop_flag) then begin
      Metrics.incr c_reconnects;
      (* a session that lived a while earns a fresh backoff *)
      if now () -. t0 > 5.0 then delay := t.rcfg.backoff_s;
      interruptible_sleep t (!delay +. Random.float (0.25 *. !delay));
      delay := Float.min 5.0 (2.0 *. !delay)
    end
  done

let run t =
  match t.thread with
  | Some _ -> fail "replica is already running"
  | None ->
      t.started_at <- now ();
      t.caught_up_at <- now ();
      t.thread <- Some (Thread.create loop t)

let stop t =
  Atomic.set t.stop_flag true;
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let connected t = t.connected
let cursor t = local_next t
let lag t = update_lag t
let config t = t.rcfg

let ready t =
  let lag_records, lag_seconds = update_lag t in
  t.connected
  && lag_records <= t.rcfg.max_lag_records
  && lag_seconds <= t.rcfg.max_lag_seconds
