(* OCaml face of the poll(2) stub (see evpoll_stubs.c for why not
   Unix.select: select's fd_set caps fd *values* at FD_SETSIZE, usually
   1024, which a many-connection event loop exceeds immediately).

   The spec is a flat [|fd0; ev0; fd1; ev1; ...|] int array so one
   preallocated array can be reused tick to tick without boxing; the
   result is one revents int per watched fd, index-aligned with the
   spec. *)

(* On Unix, Unix.file_descr is the raw int; this avoids a dependency on
   the Unix C support headers. *)
external fd_int : Unix.file_descr -> int = "%identity"

external poll_raw : int array -> int -> int -> int array = "icdb_evpoll_poll"

let rd = 1 (* readable (POLLIN; POLLHUP folds in so EOF reads out) *)
let wr = 2 (* writable (POLLOUT) *)
let er = 4 (* error / watched fd invalid (POLLERR | POLLNVAL) *)

(* [poll spec nfds timeout_ms] watches the first [nfds] (fd, events)
   pairs of [spec]; [timeout_ms] < 0 blocks indefinitely. EINTR is
   absorbed and reported as "nothing ready". *)
let poll spec nfds timeout_ms = poll_raw spec nfds timeout_ms
