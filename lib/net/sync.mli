(** A mutual-exclusion wrapper around {!Icdb.Server.t}.

    [Server.t] itself is single-threaded: the instance caches, the
    reuse index, the write-ahead journal channel and the workspace
    files are all mutated without internal locking. The network layer
    (and any other multi-threaded caller) therefore routes {e every}
    server operation through one coarse lock.

    The discipline is documented here because it is deliberate rather
    than lazy: under OCaml's [threads] library all threads share one
    runtime lock, so server work is serialized by the runtime anyway —
    a finer-grained scheme would buy no parallelism while multiplying
    the lock-order surface across the journal, the caches and the
    workspace. What concurrency {e does} buy is overlap between server
    compute and network/file I/O, and that only needs the single lock
    released while a thread blocks on a socket.

    Corollaries callers rely on:
    - {!Icdb_obs.Trace} keeps one global span stack, so spans must only
      be opened while holding this lock (see {!with_server}); the
      service layer opens its per-request span inside the critical
      section for exactly this reason.
    - Journal writes and their in-memory effects commit atomically with
      respect to other requests, so a SIGTERM drain can never observe a
      half-applied mutation. *)

type t

val wrap : Icdb.Server.t -> t
(** Takes ownership: after [wrap server], touching [server] outside
    {!with_server} from any thread is a bug. *)

val with_server : t -> (Icdb.Server.t -> 'a) -> 'a
(** Run [f] holding the lock. Exceptions release the lock and
    propagate. Not reentrant — calling {!with_server} inside [f]
    deadlocks, as [Mutex.lock] on an owned mutex does. *)

val replace : t -> (Icdb.Server.t -> Icdb.Server.t) -> unit
(** [replace t f] swaps the wrapped server for [f server], holding the
    lock for the whole exchange: in-flight requests finish against the
    old server, later ones see the new one. A replication follower uses
    this to install the server rebuilt from a freshly fetched
    checkpoint. [f] must not raise after discarding the old server's
    usability; if it raises, the old server stays installed. *)

val peek_workspace : t -> string
(** The current server's workspace path (a single mutable-field read,
    so this needs no lock; it changes only across {!replace}). *)
