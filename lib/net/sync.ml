(* Coarse-grained locking around Server.t — see sync.mli for why one
   lock is the right grain. *)

type t = { server : Icdb.Server.t; lock : Mutex.t; workspace : string }

let wrap server =
  { server;
    lock = Mutex.create ();
    workspace = Icdb.Server.workspace server }

let with_server t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t.server)

let peek_workspace t = t.workspace
