(* Coarse-grained locking around Server.t — see sync.mli for why one
   lock is the right grain. *)

type t = {
  mutable server : Icdb.Server.t;
  lock : Mutex.t;
  mutable workspace : string;
}

let wrap server =
  { server;
    lock = Mutex.create ();
    workspace = Icdb.Server.workspace server }

let with_server t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t.server)

(* Swap the server out under the same lock every request holds: a
   replication follower re-syncing from a fresh checkpoint rebuilds a
   whole new Server.t and installs it here, while queries keep
   serializing against whichever server is current. *)
let replace t f =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let server = f t.server in
      t.server <- server;
      t.workspace <- Icdb.Server.workspace server)

let peek_workspace t = t.workspace
