(* icdbd: a poll(2) event loop + worker pool over one locked Server.t.
   See service.mli for the admission-control and shutdown contracts,
   and sync.mli for the locking discipline.

   One event-loop thread owns all socket readiness: it accepts,
   reads/frames requests (via Wire.Dechunk, so frames may arrive split
   at any byte boundary), and drains per-connection write queues with
   nonblocking writes. Workers execute requests and *enqueue* replies;
   they never touch a socket. Idle connections therefore cost one
   registry entry and two ints of poll spec — no thread, no stack.

   Thread ownership rules, which keep the teardown free of races:
   - the event-loop thread is the only one that creates connections,
     reads sockets, writes sockets, closes fds, and runs [teardown];
   - any thread may queue a response ([send_bytes]), serialized by the
     connection's write lock; queueing to a dead connection is a no-op;
   - any thread may mark a connection dead ([mark_dead]); only the
     loop actually closes it, so a watched fd can never be recycled
     under the running poll;
   - workers never join other threads, so a [Shutdown] frame handled in
     a worker only flips the stop flag and lets the loop thread do the
     teardown.

   Backpressure: responses queue per connection. Past [wq_hiwater]
   bytes the loop stops polling that connection for reads (a client
   that won't drain replies cannot keep submitting); past [wq_hardcap]
   the connection is killed (a client that never reads cannot buffer
   the server into the ground). Replication followers are exempt from
   the hard cap — their sender threads throttle on the same high-water
   mark, converting TCP backpressure into [fl_queued] growth and
   eventually the [repl_max_lag] shed. *)

open Icdb_obs

type config = {
  host : string;
  port : int;
  max_connections : int;
  workers : int;
  max_queue : int;
  request_timeout_s : float;
  idle_timeout_s : float;
  slow_threshold_s : float;
  read_only : bool;
  repl_max_lag : int;
  repl_batch : int;
  telemetry_period_s : float;
}

let default_config =
  { host = "127.0.0.1";
    port = 7601;
    max_connections = 64;
    workers = 4;
    max_queue = 128;
    request_timeout_s = 30.0;
    idle_timeout_s = 300.0;
    slow_threshold_s = 1.0;
    read_only = false;
    repl_max_lag = 10_000;
    repl_batch = 512;
    telemetry_period_s = 1.0 }

(* Stop polling a connection for reads once this many response bytes
   are queued unsent... *)
let wq_hiwater = 1 lsl 20

(* ...and kill a non-follower connection outright at this point: the
   peer has not read for [wq_hardcap - wq_hiwater] bytes of backlog. *)
let wq_hardcap = 64 * (1 lsl 20)

(* Bytes per read(2) on a readable connection. *)
let rbuf_size = 1 lsl 16

type conn = {
  cid : int;
  fd : Unix.file_descr;
  peer : string;
  created_at : float;
  wlock : Mutex.t;             (* serializes queueing vs flush vs close *)
  mutable alive : bool;        (* false = logically dead; loop reaps it *)
  mutable closed : bool;       (* fd actually closed (loop thread only) *)
  mutable last_active : float; (* wall clock of the last complete frame *)
  mutable follower : bool;     (* subscribed replication follower: exempt
                                  from idle reaping and the hard cap *)
  dechunk : Wire.Dechunk.t;    (* reassembles partial reads; loop-owned *)
  wq : string Queue.t;         (* encoded frames awaiting the socket *)
  mutable wq_off : int;        (* bytes of the queue head already sent *)
  mutable wq_bytes : int;      (* total queued bytes *)
  mutable fatal : bool;        (* framing lost / reaped: flush, then close *)
  mutable fatal_at : float;    (* when [fatal] flipped: starts the
                                  flush-grace clock, after which the
                                  connection closes even with unsent
                                  bytes queued *)
  mutable reqs : int;          (* complete requests enqueued (loop thread) *)
  mutable paused_since : float;(* 0.0 = reads not paused; else when this
                                  connection crossed the high-water mark
                                  (loop thread; watchdog reads it) *)
}

(* One subscribed follower, owned by the publisher. The per-follower
   frame queue decouples journal streaming from each follower's TCP
   backpressure: the publisher never blocks on a socket, a dedicated
   sender thread per follower feeds the connection's write queue at the
   high-water mark, and a follower whose queue grows past
   [repl_max_lag] records is shed. *)
type follower = {
  fl_conn : conn;
  fl_rid : int;                (* subscribe request id, echoed on pushes *)
  mutable fl_cursor : int;     (* next journal sequence number to stream *)
  fl_qlock : Mutex.t;
  fl_qcond : Condition.t;
  fl_frames : (string * int) Queue.t;  (* encoded frame, record count *)
  mutable fl_queued : int;     (* records sitting in [fl_frames] *)
  mutable fl_sender : Thread.t option;
  mutable fl_dead : bool;      (* shed or shutting down *)
  mutable fl_reason : string;  (* why, for the courtesy Repl_error *)
  mutable fl_dead_at : float;
  mutable fl_last_sent : float;  (* heartbeat pacing *)
}

type task = {
  tconn : conn;
  tframe : Wire.req Wire.frame;
  tctx : Wire.ctx;
  enqueued_at : float;
}

type counters = {
  c_accepted : Metrics.counter;
  c_refused : Metrics.counter;
  c_closed : Metrics.counter;
  c_requests : Metrics.counter;
  c_errors : Metrics.counter;
  c_shed : Metrics.counter;
  c_timeouts : Metrics.counter;
  c_malformed : Metrics.counter;
  c_version_mismatch : Metrics.counter;
  c_idle_reaped : Metrics.counter;
  c_bp_pauses : Metrics.counter;   (* read-pause transitions (hiwater) *)
  c_bp_kills : Metrics.counter;    (* hard-cap connection kills *)
  c_wd_trips : Metrics.counter;    (* stall-watchdog trip transitions *)
}

type t = {
  cfg : config;
  sync : Sync.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  want_stop : bool Atomic.t;
  queue : task Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  conns : (int, conn) Hashtbl.t;
  clock : Mutex.t;        (* guards [conns] and [next_cid] *)
  mutable next_cid : int;
  mutable worker_threads : Thread.t list;
  mutable loop_thread : Thread.t option;
  (* self-pipe: any thread that queues bytes or kills a connection
     writes one byte here so a parked poll wakes and notices *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  rlock : Mutex.t;        (* guards [followers] *)
  mutable followers : follower list;
  mutable publisher : Thread.t option;
  ctr : counters;
  h_queue_wait : Metrics.histogram;
  h_request : Metrics.histogram;    (* all-command service time *)
  h_poll_wait : Metrics.histogram;  (* per-tick time parked in poll(2) *)
  h_dispatch : Metrics.histogram;   (* per-tick time dispatching readiness *)
  (* Slow-query log: requests that took longer than [slow_threshold_s],
     kept in a fixed ring of [slow_cap] slots — recording is O(1)
     (overwrite the oldest), not the O(n) list trim it used to be.
     [slow_next] counts entries ever recorded; the live slot for the
     next entry is [slow_next mod slow_cap]. *)
  slock : Mutex.t;
  slow_ring : Wire.slow_entry option array;
  mutable slow_next : int;
  mutable last_slow_warn : float;  (* rate limit for the warn event *)
  (* Continuous telemetry (None when [telemetry_period_s <= 0]). *)
  mutable sampler : Series.t option;
  mutable loop_heartbeat : float;  (* wall clock of the last completed
                                      event-loop tick; the watchdog's
                                      primary liveness signal *)
  (* Stall watchdog, written only from the sampler tick hook. *)
  mutable wd_tripped : bool;
  mutable wd_reason : string;
  mutable wd_missed_seen : int;    (* sampler missed-deadline highwater *)
}

let slow_cap = 64

let now () = Unix.gettimeofday ()

(* Newest-first snapshot of the slow ring. Caller holds [slock]. *)
let slow_snapshot_locked t =
  List.filter_map
    (fun i ->
      let idx = t.slow_next - 1 - i in
      if idx < 0 then None else t.slow_ring.(idx mod slow_cap))
    (List.init slow_cap Fun.id)

(* Primary-side replication metrics. *)
let g_followers = Metrics.gauge "repl.followers"
let c_batches_sent = Metrics.counter "repl.batches_sent"
let c_records_sent = Metrics.counter "repl.records_sent"
let c_followers_shed = Metrics.counter "repl.followers_shed"
let c_checkpoints_sent = Metrics.counter "repl.checkpoints_sent"
let c_readonly_rejected = Metrics.counter "repl.readonly_rejected"

let g_connections = Metrics.gauge "net.connections"

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let wake t =
  try ignore (Unix.write_substring t.wake_w "w" 0 1)
  with Unix.Unix_error _ | Sys_error _ -> ()
  (* EAGAIN = pipe already full of wakeups: the loop is waking anyway *)

(* Queue pre-encoded bytes on the connection and nudge the loop; the
   loop does the actual write when the socket is ready. Queueing to a
   dead connection silently drops. *)
let send_bytes t conn bytes =
  Mutex.lock conn.wlock;
  let killed = ref false in
  let queued =
    if conn.alive then begin
      Queue.push bytes conn.wq;
      conn.wq_bytes <- conn.wq_bytes + String.length bytes;
      if conn.wq_bytes > wq_hardcap && not conn.follower then begin
        (* the peer stopped reading long ago; cut it loose rather than
           buffer without bound (its queued replies are forfeit) *)
        conn.alive <- false;
        killed := true
      end;
      true
    end
    else false
  in
  Mutex.unlock conn.wlock;
  if !killed then begin
    Metrics.incr t.ctr.c_bp_kills;
    Event.warn ~fields:[ ("conn", string_of_int conn.cid) ]
      "net: killing %s: write queue past hard cap (%d bytes unread)"
      conn.peer conn.wq_bytes
  end;
  if queued then wake t

let send_resp t conn id body =
  send_bytes t conn (Wire.encode_response { id; body })

let send_error t conn id code message =
  Metrics.incr t.ctr.c_errors;
  send_resp t conn id (Wire.Error { code; message })

(* Flag lost framing (or an idle reap): the loop keeps the connection
   just long enough to flush the queued courtesy frame, then closes.
   [fatal_at] starts that clock — a fatal connection whose peer never
   reads is force-closed after the flush grace rather than pinning its
   fd and [max_connections] slot behind an undrainable write queue.
   Loop thread only (like everything else that touches [fatal]). *)
let mark_fatal conn =
  if not conn.fatal then begin
    conn.fatal <- true;
    conn.fatal_at <- now ()
  end

(* Logical death, callable from any thread. The loop notices on its
   next tick and does the close, so a polled fd is never recycled out
   from under the running poll(2). Idempotent. *)
let mark_dead t conn =
  Mutex.lock conn.wlock;
  let was_alive = conn.alive in
  conn.alive <- false;
  Mutex.unlock conn.wlock;
  if was_alive then wake t

(* Nonblocking flush of the write queue; loop/teardown thread only.
   Stops at EAGAIN (the socket buffer is full; poll will say when);
   a socket error marks the connection dead. *)
let flush_writes conn =
  Mutex.lock conn.wlock;
  let continue = ref true in
  while !continue && not (Queue.is_empty conn.wq) do
    let head = Queue.peek conn.wq in
    let off = conn.wq_off in
    let len = String.length head - off in
    match Unix.write_substring conn.fd head off len with
    | n ->
        conn.wq_bytes <- conn.wq_bytes - n;
        if n = len then begin
          ignore (Queue.pop conn.wq);
          conn.wq_off <- 0
        end
        else begin
          conn.wq_off <- off + n;
          continue := false
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        continue := false
    | exception (Unix.Unix_error _ | Sys_error _) ->
        conn.alive <- false;
        continue := false
  done;
  Mutex.unlock conn.wlock

(* Close the socket and unregister; loop/teardown thread only. A last
   best-effort flush delivers whatever fits in the socket buffer (the
   courtesy Bye / Repl_error frames). Idempotent. *)
let close_conn t conn =
  let doit =
    Mutex.lock conn.wlock;
    let doit = not conn.closed in
    conn.closed <- true;
    Mutex.unlock conn.wlock;
    doit
  in
  if doit then begin
    flush_writes conn;
    Mutex.lock conn.wlock;
    conn.alive <- false;
    Mutex.unlock conn.wlock;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.clock;
    Hashtbl.remove t.conns conn.cid;
    Metrics.set g_connections (float_of_int (Hashtbl.length t.conns));
    Mutex.unlock t.clock;
    Metrics.incr t.ctr.c_closed;
    Event.debug ~fields:[ ("conn", string_of_int conn.cid) ]
      "net: connection %s closed" conn.peer
  end

let conns_snapshot t =
  Mutex.lock t.clock;
  let l = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  Mutex.unlock t.clock;
  l

(* One row per live connection for /connz, `icdb top` and the flight
   recorder. Reads of the mutable conn fields are racy snapshots, which
   is fine for a diagnostic table. *)
type conn_info = {
  ci_cid : int;
  ci_peer : string;
  ci_state : string;           (* follower | fatal | paused | active *)
  ci_wq_bytes : int;
  ci_reqs : int;
  ci_age_s : float;
  ci_idle_s : float;
  ci_paused_s : float;         (* 0 unless reads are paused *)
}

let conn_state c =
  if c.follower then "follower"
  else if c.fatal then "fatal"
  else if c.paused_since > 0.0 then "paused"
  else "active"

let conn_table t =
  let t0 = now () in
  conns_snapshot t
  |> List.filter (fun c -> not c.closed)
  |> List.map (fun c ->
         { ci_cid = c.cid;
           ci_peer = c.peer;
           ci_state = conn_state c;
           ci_wq_bytes = c.wq_bytes;
           ci_reqs = c.reqs;
           ci_age_s = t0 -. c.created_at;
           ci_idle_s = t0 -. c.last_active;
           ci_paused_s =
             (if c.paused_since > 0.0 then t0 -. c.paused_since else 0.0) })
  |> List.sort (fun a b -> compare a.ci_cid b.ci_cid)

(* ------------------------------------------------------------------ *)
(* Request execution (worker side)                                     *)
(* ------------------------------------------------------------------ *)

(* CQL commands that mutate the database or workspace; a read-only
   follower refuses them with a structured [Read_only] error so clients
   can redirect to the primary. Everything else — catalog queries,
   component/implementation/instance lookups — is served locally. *)
let mutating_cql =
  [ "request_component"; "start_a_design"; "start_a_transaction";
    "put_in_component_list"; "end_a_transaction"; "end_a_design" ]

let sql_first_word stmt =
  let n = String.length stmt in
  let i = ref 0 in
  while
    !i < n && (match stmt.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    incr i
  done;
  let j = ref !i in
  while
    !j < n && (match stmt.[!j] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  do
    incr j
  done;
  String.uppercase_ascii (String.sub stmt !i (!j - !i))

(* [Some resp] when a read-only follower must refuse the request. A CQL
   text that does not parse is let through: the executor produces the
   better (Parse_error) diagnostic. Batch entries are judged one by
   one where the batch executes, so a mutating entry poisons only
   itself. *)
let read_only_reject t (body : Wire.req) =
  if not t.cfg.read_only then None
  else
    let refuse what =
      Metrics.incr c_readonly_rejected;
      Some
        (Wire.Error
           { code = Wire.Read_only;
             message =
               Printf.sprintf
                 "follower is read-only: %s mutates the database; send it \
                  to the primary"
                 what })
    in
    match body with
    | Wire.Cql { text; _ } -> (
        match Icdb_cql.Command.parse text with
        | cmd -> (
            match Icdb_cql.Command.command_name cmd with
            | name when List.mem name mutating_cql -> refuse ("CQL " ^ name)
            | _ -> None
            | exception Icdb_cql.Command.Cql_error _ -> None)
        | exception Icdb_cql.Command.Cql_error _ -> None)
    | Wire.Sql stmt -> (
        (* PARETO/DOMINATED are frontier reads, as side-effect-free as
           SELECT. *)
        match sql_first_word stmt with
        | "SELECT" | "PARETO" | "DOMINATED" -> None
        | _ -> refuse "this SQL statement")
    | _ -> None

let cql_metric_name text =
  match Icdb_cql.Command.parse text with
  | cmd -> (
      match Icdb_cql.Command.command_name cmd with
      | name -> "net.cql." ^ name
      | exception Icdb_cql.Command.Cql_error _ -> "net.cql.invalid")
  | exception Icdb_cql.Command.Cql_error _ -> "net.cql.invalid"

let stats_payload t =
  let st = Sync.with_server t.sync Icdb.Server.stats in
  let sp_text =
    Printf.sprintf
      "server cache: %d hits, %d reuse hits, %d misses, %d evictions, %d \
       entries; memo %d/%d"
      st.Icdb.Server.st_hits st.Icdb.Server.st_reuse_hits
      st.Icdb.Server.st_misses st.Icdb.Server.st_evictions
      st.Icdb.Server.st_entries st.Icdb.Server.st_memo_hits
      st.Icdb.Server.st_memo_misses
  in
  let reg = Metrics.default in
  let sp_counters =
    List.map
      (fun (c : Metrics.counter) -> (c.Metrics.cname, c.Metrics.count))
      (Metrics.counters reg)
  in
  let sp_gauges =
    List.map
      (fun (g : Metrics.gauge) -> (g.Metrics.gname, g.Metrics.gvalue))
      (Metrics.gauges reg)
  in
  let sp_hists =
    List.map
      (fun h ->
        let s = Metrics.summary h in
        { Wire.hs_name = s.Metrics.s_name;
          hs_count = s.Metrics.s_count;
          hs_sum = s.Metrics.s_sum;
          hs_min = s.Metrics.s_min;
          hs_max = s.Metrics.s_max;
          hs_p50 = s.Metrics.s_p50;
          hs_p90 = s.Metrics.s_p90;
          hs_p99 = s.Metrics.s_p99 })
      (Metrics.histograms reg)
  in
  let sp_slow =
    Mutex.lock t.slock;
    let l = slow_snapshot_locked t in
    Mutex.unlock t.slock;
    l
  in
  { Wire.sp_text; sp_counters; sp_gauges; sp_hists; sp_slow }

let remote_of_span (s : Trace.span) =
  { Wire.rs_id = s.Trace.sid;
    rs_parent = s.Trace.sparent;
    rs_name = s.Trace.sname;
    rs_tag = (match s.Trace.stag with Some tag -> tag | None -> "");
    rs_start_ns = s.Trace.sstart_ns;
    rs_dur_ns = s.Trace.sdur_ns;
    rs_attrs = s.Trace.sattrs }

(* What a worker learns while executing one request, for the slow-query
   log: the owner tag its spans carry, whether the component cache
   answered, and where the time went. *)
type exec_info = {
  mutable xi_tag : string;
  mutable xi_cache : string;
  mutable xi_phases : (string * float) list;
  mutable xi_plan : string;  (* query-plan summary of the last SQL
                                statement executed, "" when none *)
}

(* Run [f server] with every span tagged [tag]. A request that sent a
   trace id gets tracing even when the server runs untraced: the flag
   flip is safe because it happens under the server lock, which is
   where all span traffic lives (see sync.mli). *)
let with_request_trace t ~tag ~attrs info f =
  Sync.with_server t.sync (fun server ->
      let saved = Trace.enabled () in
      if tag <> "" then Trace.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Trace.set_enabled saved)
        (fun () ->
          let ch = Metrics.counter "cache.hit" in
          let cr = Metrics.counter "cache.reuse_hit" in
          let cm = Metrics.counter "cache.miss" in
          let h0 = ch.Metrics.count + cr.Metrics.count in
          let m0 = cm.Metrics.count in
          let mark = Trace.finished_count () in
          let run () = f server in
          let result =
            if tag = "" then run ()
            else
              Trace.with_tag tag (fun () ->
                  Trace.with_span "net.request" ~attrs run)
          in
          info.xi_cache <-
            (if ch.Metrics.count + cr.Metrics.count > h0 then "hit"
             else if cm.Metrics.count > m0 then "miss"
             else "-");
          info.xi_phases <- Trace.phase_totals (Trace.since mark);
          result))

(* Run one SQL statement to a response body, classifying failures. The
   planner's decision travels with the request: onto [info] for the
   slow-query log and, when tracing, as a [plan] attribute on the open
   net.request span. *)
let exec_sql t ~tag ~attrs info stmt : Wire.resp =
  match
    with_request_trace t ~tag ~attrs info (fun server ->
        let result, plan =
          Icdb_reldb.Sql.exec_explained (Icdb.Server.db server) stmt
        in
        (match plan with
        | Some p ->
            let s = Icdb_reldb.Plan.summary p in
            info.xi_plan <- s;
            if tag <> "" then Trace.add_attr "plan" s
        | None -> ());
        result)
  with
  | Icdb_reldb.Sql.Affected n -> Wire.Sql_result (Wire.Affected n)
  | Icdb_reldb.Sql.Relation rel ->
      let cols = List.map fst rel.Icdb_reldb.Query.rschema in
      let rows =
        List.map
          (fun row -> Array.to_list (Array.map Icdb_reldb.Value.to_string row))
          rel.Icdb_reldb.Query.rrows
      in
      Wire.Sql_result (Wire.Relation { cols; rows })
  | exception Icdb_reldb.Sql.Sql_error msg ->
      Wire.Error { code = Wire.Sql_error; message = msg }

(* Run one CQL command to a response body, classifying failures. *)
let exec_cql t ~tag ~attrs info text args : Wire.resp =
  match
    with_request_trace t ~tag ~attrs info (fun server ->
        Icdb_cql.Exec.run server ~args text)
  with
  | results -> Wire.Results results
  | exception Icdb_cql.Exec.Cql_error msg ->
      Wire.Error { code = Wire.Parse_error; message = msg }
  | exception Icdb.Server.Icdb_error msg ->
      Wire.Error { code = Wire.Exec_error; message = msg }
  | exception Icdb_reldb.Sql.Sql_error msg ->
      Wire.Error { code = Wire.Sql_error; message = msg }

let c_batches = Metrics.counter "net.batches"
let c_batch_entries = Metrics.counter "net.batch_entries"

(* A batch occupies one worker and one queue slot however many entries
   it carries, so admission control only sees "one request"; the entry
   cap keeps a 16 MiB frame from smuggling an unbounded amount of work
   past that accounting. *)
let max_batch_entries = 4096

(* Execute one framed request to a response body, classifying every
   expected failure as a structured error code. [deadline] is the
   absolute wall-clock instant the request must stop consuming its
   worker — min of the client's ctx deadline and the server's
   [request_timeout_s], both measured from enqueue. A single query is
   never preempted mid-execution (OCaml compute cannot be safely
   interrupted), but a [Batch] re-checks between entries and answers
   the remainder with [Berror Timeout]. *)
let execute t conn (frame : Wire.req Wire.frame) (ctx : Wire.ctx) ~deadline
    info : Wire.resp =
  (* the owner tag for this request's spans: the client's trace id when
     it sent one, else a server-assigned conn/request tag so concurrent
     requests never interleave anonymously *)
  let tag =
    if ctx.Wire.trace_id <> "" then ctx.Wire.trace_id
    else if Trace.enabled () then
      Printf.sprintf "c%d.r%d" conn.cid frame.id
    else ""
  in
  info.xi_tag <- tag;
  let attrs =
    [ ("conn", string_of_int conn.cid);
      ("request", string_of_int frame.id) ]
  in
  match read_only_reject t frame.body with
  | Some resp -> resp
  | None -> (
  match frame.body with
  | Wire.Ping -> Wire.Pong
  | Wire.Stats -> Wire.Stats_report (stats_payload t)
  | Wire.Trace_fetch want ->
      (* the ring is only consistent under the server lock *)
      let spans = Sync.with_server t.sync (fun _ -> Trace.tagged want) in
      Wire.Spans (List.map remote_of_span spans)
  | Wire.Shutdown ->
      Event.info "net: shutdown requested by %s" conn.peer;
      Atomic.set t.want_stop true;
      wake t;
      Wire.Bye
  | Wire.Sql stmt -> exec_sql t ~tag ~attrs info stmt
  | Wire.Cql { text; args } -> exec_cql t ~tag ~attrs info text args
  | Wire.Batch entries when List.length entries > max_batch_entries ->
      Wire.Error
        { code = Wire.Protocol_error;
          message =
            Printf.sprintf "batch of %d entries exceeds the %d-entry cap"
              (List.length entries) max_batch_entries }
  | Wire.Batch entries ->
      (* one worker, one queue slot, one deadline for the whole batch;
         entries run in order and fail independently, so the reply is
         positionally matched and errors stay isolated to their entry.
         The deadline is re-checked between entries: a batch cannot
         occupy its worker past the request's timeout the way a shed
         or queue-aged single request never could *)
      Metrics.incr c_batches;
      Metrics.incr ~by:(List.length entries) c_batch_entries;
      let run_entry (e : Wire.batch_entry) : Wire.batch_result =
        if now () > deadline then
          Wire.Berror
            { code = Wire.Timeout;
              message = "batch deadline exceeded before this entry ran" }
        else
        let body =
          match e with
          | Wire.Bcql { text; args } -> Wire.Cql { text; args }
          | Wire.Bsql stmt -> Wire.Sql stmt
        in
        let resp =
          match read_only_reject t body with
          | Some resp -> resp
          | None -> (
              try
                match body with
                | Wire.Cql { text; args } ->
                    exec_cql t ~tag ~attrs info text args
                | Wire.Sql stmt -> exec_sql t ~tag ~attrs info stmt
                | _ -> assert false
              with e ->
                Wire.Error
                  { code = Wire.Internal;
                    message = "internal error: " ^ Printexc.to_string e })
        in
        match resp with
        | Wire.Results rs -> Wire.Bresults rs
        | Wire.Sql_result r -> Wire.Bsql_result r
        | Wire.Error { code; message } -> Wire.Berror { code; message }
        | _ ->
            Wire.Berror
              { code = Wire.Internal;
                message = "unexpected response shape for a batch entry" }
      in
      Wire.Batch_reply (List.map run_entry entries)
  | Wire.Subscribe _ ->
      (* routed to [handle_subscribe] before execution ever reaches
         here; answering makes the match exhaustive *)
      Wire.Repl_error "subscribe cannot be executed as a plain request")

let metric_name (frame : Wire.req Wire.frame) =
  match frame.body with
  | Wire.Ping -> "net.ping"
  | Wire.Stats -> "net.stats"
  | Wire.Trace_fetch _ -> "net.trace_fetch"
  | Wire.Shutdown -> "net.shutdown"
  | Wire.Sql _ -> "net.sql"
  | Wire.Subscribe _ -> "net.subscribe"
  | Wire.Batch _ -> "net.batch"
  | Wire.Cql { text; _ } -> cql_metric_name text

let record_slow t ~cmd ~info ~conn ~seconds =
  let entry =
    { Wire.sl_cmd = cmd;
      sl_trace = info.xi_tag;
      sl_conn = conn.cid;
      sl_seconds = seconds;
      sl_cache = info.xi_cache;
      sl_phases = info.xi_phases;
      sl_plan = info.xi_plan }
  in
  let do_warn =
    Mutex.lock t.slock;
    t.slow_ring.(t.slow_next mod slow_cap) <- Some entry;
    t.slow_next <- t.slow_next + 1;
    let tnow = now () in
    let warn = tnow -. t.last_slow_warn >= 1.0 in
    if warn then t.last_slow_warn <- tnow;
    Mutex.unlock t.slock;
    warn
  in
  Metrics.incr (Metrics.counter "net.slow_requests");
  if do_warn then
    Event.warn
      ~fields:
        [ ("cmd", cmd);
          ("trace", info.xi_tag);
          ("conn", string_of_int conn.cid);
          ("cache", info.xi_cache);
          ("plan", info.xi_plan);
          ("seconds", Printf.sprintf "%.3f" seconds) ]
      "net: slow request (%.3f s > %.3f s threshold)" seconds
      t.cfg.slow_threshold_s

(* ------------------------------------------------------------------ *)
(* Replication publisher (primary side)                                *)
(* ------------------------------------------------------------------ *)

let snapshot_name = "icdb.snapshot"
let chunk_bytes = 1 lsl 20

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* What a fresh follower needs besides the journal stream: the snapshot
   plus every netlist/IIF artifact in the workspace. *)
let checkpoint_files workspace =
  let all = try Sys.readdir workspace with Sys_error _ -> [||] in
  Array.to_list all
  |> List.filter (fun name ->
         name = snapshot_name
         || Filename.check_suffix name ".vhdl"
         || Filename.check_suffix name ".iif")
  |> List.sort compare

(* Mark a follower for removal without doing anything that could block:
   the publisher calls this, and the publisher must never wait on a
   follower's socket. The sender thread wakes, queues the courtesy
   [Repl_error] and marks the connection dead; the event loop flushes
   what it can and closes. *)
let shed_follower fl reason =
  if not fl.fl_dead then begin
    fl.fl_dead <- true;
    fl.fl_reason <- reason;
    fl.fl_dead_at <- now ();
    Metrics.incr c_followers_shed;
    Event.warn
      ~fields:[ ("conn", string_of_int fl.fl_conn.cid) ]
      "repl: dropping follower %s: %s" fl.fl_conn.peer reason;
    Mutex.lock fl.fl_qlock;
    Condition.broadcast fl.fl_qcond;
    Mutex.unlock fl.fl_qlock
  end

(* Per-follower sender: drains the frame queue into the connection's
   write queue, pacing on the high-water mark so TCP backpressure from
   a slow follower surfaces as [fl_queued] growth (and eventually the
   [repl_max_lag] shed) instead of unbounded server-side buffering. *)
let sender_loop t fl =
  let rec loop () =
    Mutex.lock fl.fl_qlock;
    while Queue.is_empty fl.fl_frames && not fl.fl_dead && fl.fl_conn.alive do
      Condition.wait fl.fl_qcond fl.fl_qlock
    done;
    let item =
      if Queue.is_empty fl.fl_frames then None
      else begin
        let bytes, n = Queue.pop fl.fl_frames in
        fl.fl_queued <- fl.fl_queued - n;
        Some bytes
      end
    in
    Mutex.unlock fl.fl_qlock;
    match item with
    | Some bytes when fl.fl_conn.alive && not fl.fl_dead ->
        let rec throttle () =
          if fl.fl_conn.alive && not fl.fl_dead
             && fl.fl_conn.wq_bytes >= wq_hiwater
          then begin
            Thread.delay 0.01;
            throttle ()
          end
        in
        throttle ();
        send_bytes t fl.fl_conn bytes;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if fl.fl_dead && fl.fl_conn.alive then
    send_resp t fl.fl_conn fl.fl_rid (Wire.Repl_error fl.fl_reason);
  mark_dead t fl.fl_conn

(* The subscribe handshake, run on the worker that picked the frame up.
   Under the server lock, decide whether the follower's cursor is still
   inside the journal window (stream from it) or stale/fresh (checkpoint
   first, then stream from the post-checkpoint cursor); queue the
   checkpoint synchronously, then hand the follower to the publisher. *)
let handle_subscribe t conn rid cursor =
  if t.cfg.read_only then
    send_resp t conn rid
      (Wire.Repl_error "this node is a follower; subscribe to the primary")
  else begin
    let plan =
      Sync.with_server t.sync (fun server ->
          if not (Icdb.Server.durable server) then
            Error "primary is not durable: start it with --durable"
          else
            match Icdb_reldb.Db.journal (Icdb.Server.db server) with
            | None -> Error "primary has no journal attached"
            | Some j ->
                let base = Icdb_reldb.Journal.base_seq j in
                let next = Icdb_reldb.Journal.next_seq j in
                if cursor >= base && cursor <= next then Ok (`Stream cursor)
                else begin
                  (* absorb the journal so the window starts exactly at
                     the cursor the checkpoint is handed out with *)
                  Icdb.Server.checkpoint server;
                  let c = Icdb_reldb.Journal.next_seq j in
                  let ws = Icdb.Server.workspace server in
                  let files =
                    List.filter_map
                      (fun name ->
                        match read_file (Filename.concat ws name) with
                        | data -> Some (name, data)
                        | exception Sys_error _ -> None)
                      (checkpoint_files ws)
                  in
                  Ok (`Checkpoint (c, files))
                end)
    in
    match plan with
    | Error msg -> send_resp t conn rid (Wire.Repl_error msg)
    | Ok plan ->
        conn.follower <- true;
        let start_cursor =
          match plan with
          | `Stream c ->
              Event.info
                ~fields:[ ("conn", string_of_int conn.cid) ]
                "repl: follower %s subscribed at cursor %d" conn.peer c;
              c
          | `Checkpoint (c, files) ->
              Metrics.incr c_checkpoints_sent;
              Event.info
                ~fields:[ ("conn", string_of_int conn.cid) ]
                "repl: follower %s needs a checkpoint (%d files, cursor %d)"
                conn.peer (List.length files) c;
              send_resp t conn rid
                (Wire.Checkpoint_offer
                   { co_cursor = c; co_files = List.length files });
              let nfiles = List.length files in
              List.iteri
                (fun i (name, data) ->
                  let len = String.length data in
                  let nchunks = max 1 ((len + chunk_bytes - 1) / chunk_bytes) in
                  for k = 0 to nchunks - 1 do
                    let off = k * chunk_bytes in
                    send_resp t conn rid
                      (Wire.Checkpoint_chunk
                         { cc_name = name;
                           cc_data =
                             String.sub data off (min chunk_bytes (len - off));
                           cc_last = i = nfiles - 1 && k = nchunks - 1 })
                  done)
                files;
              (* an empty checkpoint still needs its terminator *)
              if files = [] then
                send_resp t conn rid
                  (Wire.Checkpoint_chunk
                     { cc_name = ""; cc_data = ""; cc_last = true });
              c
        in
        let fl =
          { fl_conn = conn;
            fl_rid = rid;
            fl_cursor = start_cursor;
            fl_qlock = Mutex.create ();
            fl_qcond = Condition.create ();
            fl_frames = Queue.create ();
            fl_queued = 0;
            fl_sender = None;
            fl_dead = false;
            fl_reason = "";
            fl_dead_at = 0.0;
            fl_last_sent = 0.0 }
        in
        fl.fl_sender <- Some (Thread.create (sender_loop t) fl);
        Mutex.lock t.rlock;
        t.followers <- fl :: t.followers;
        Metrics.set g_followers (float_of_int (List.length t.followers));
        Mutex.unlock t.rlock
  end

(* One publisher tick for one follower: stream the next batch of journal
   records (plus the workspace files they depend on) into its queue, or
   shed it. Empty batches are heartbeats, paced at 1 Hz, carrying the
   primary's [next_seq] so the follower can measure its lag. *)
let publish_one t fl =
  if (not fl.fl_dead) && fl.fl_conn.alive then begin
    let queued, frames =
      Mutex.lock fl.fl_qlock;
      let q = (fl.fl_queued, Queue.length fl.fl_frames) in
      Mutex.unlock fl.fl_qlock;
      q
    in
    if queued > t.cfg.repl_max_lag || frames > 512 then
      shed_follower fl
        (Printf.sprintf
           "follower lag exceeded %d records; re-sync from a checkpoint"
           t.cfg.repl_max_lag)
    else
      match
        Sync.with_server t.sync (fun server ->
            match Icdb_reldb.Db.journal (Icdb.Server.db server) with
            | None -> `Gone
            | Some j ->
                let base = Icdb_reldb.Journal.base_seq j in
                let next = Icdb_reldb.Journal.next_seq j in
                if fl.fl_cursor < base || fl.fl_cursor > next then `Stale
                else begin
                  let s =
                    Icdb_reldb.Journal.stream_from j ~seq:fl.fl_cursor
                      ~max_records:t.cfg.repl_batch ()
                  in
                  let records =
                    List.map Icdb_reldb.Journal.encode_line
                      s.Icdb_reldb.Journal.st_entries
                  in
                  let ws = Icdb.Server.workspace server in
                  let files =
                    List.concat_map Icdb.Server.replication_files
                      s.Icdb_reldb.Journal.st_entries
                    |> List.sort_uniq compare
                    |> List.filter_map (fun name ->
                           match read_file (Filename.concat ws name) with
                           | data -> Some (name, data)
                           | exception Sys_error _ -> None)
                  in
                  `Batch (records, files, next)
                end)
      with
      | exception e ->
          (* the journal_stream fault site or an I/O hiccup: the cursor
             has not moved, so just retry on the next poll *)
          Event.warn "repl: journal stream failed: %s" (Printexc.to_string e)
      | `Gone -> shed_follower fl "primary journal detached"
      | `Stale ->
          shed_follower fl
            "cursor left the journal window (a checkpoint truncated it); \
             reconnect for a fresh checkpoint"
      | `Batch (records, files, jnext) ->
          let n = List.length records in
          if n > 0 || now () -. fl.fl_last_sent >= 1.0 then begin
            let bytes =
              Wire.encode_response
                { id = fl.fl_rid;
                  body =
                    Wire.Journal_batch
                      { jb_first = fl.fl_cursor;
                        jb_next = jnext;
                        jb_records = records;
                        jb_files = files } }
            in
            Mutex.lock fl.fl_qlock;
            Queue.push (bytes, n) fl.fl_frames;
            fl.fl_queued <- fl.fl_queued + n;
            Condition.signal fl.fl_qcond;
            Mutex.unlock fl.fl_qlock;
            fl.fl_cursor <- fl.fl_cursor + n;
            fl.fl_last_sent <- now ();
            Metrics.incr c_batches_sent;
            if n > 0 then Metrics.incr ~by:n c_records_sent
          end
  end

let publisher_loop t =
  let rec loop () =
    if not (Atomic.get t.want_stop) then begin
      let fls =
        Mutex.lock t.rlock;
        let l = t.followers in
        Mutex.unlock t.rlock;
        l
      in
      List.iter (publish_one t) fls;
      (* a shed follower that lingers (its courtesy frame undeliverable)
         gets its socket forced shut after a grace period; closed
         connections drop out of the registry *)
      List.iter
        (fun fl ->
          if fl.fl_dead && fl.fl_conn.alive && now () -. fl.fl_dead_at > 5.0
          then
            try Unix.shutdown fl.fl_conn.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
        fls;
      Mutex.lock t.rlock;
      t.followers <- List.filter (fun fl -> fl.fl_conn.alive) t.followers;
      Metrics.set g_followers (float_of_int (List.length t.followers));
      Mutex.unlock t.rlock;
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

let handle_task t task =
  let conn = task.tconn and frame = task.tframe and ctx = task.tctx in
  let wait = now () -. task.enqueued_at in
  Metrics.observe t.h_queue_wait wait;
  let deadline_missed =
    ctx.Wire.timeout_s > 0.0 && wait > ctx.Wire.timeout_s
  in
  if wait > t.cfg.request_timeout_s || deadline_missed then begin
    Metrics.incr t.ctr.c_timeouts;
    let bound =
      if deadline_missed then ctx.Wire.timeout_s else t.cfg.request_timeout_s
    in
    send_error t conn frame.Wire.id Wire.Timeout
      (Printf.sprintf
         "request timed out after %.3f s in queue (deadline %.3f s)" wait
         bound)
  end
  else
    match frame.Wire.body with
    | Wire.Subscribe { cursor } ->
        (* replication handshake: sends its own frames (offer, chunks)
           and registers with the publisher, which pushes the batches —
           there is no single response to send here *)
        handle_subscribe t conn frame.Wire.id cursor
    | _ ->
    begin
    let t0 = now () in
    let info = { xi_tag = ""; xi_cache = "-"; xi_phases = []; xi_plan = "" } in
    (* the absolute instant this request must stop consuming a worker:
       the tighter of the client's deadline and the server's request
       timeout, both anchored at enqueue (re-checked mid-batch) *)
    let deadline =
      let server_d = task.enqueued_at +. t.cfg.request_timeout_s in
      if ctx.Wire.timeout_s > 0.0 then
        Float.min server_d (task.enqueued_at +. ctx.Wire.timeout_s)
      else server_d
    in
    let resp =
      try execute t conn frame ctx ~deadline info
      with e ->
        Wire.Error
          { code = Wire.Internal;
            message = "internal error: " ^ Printexc.to_string e }
    in
    let elapsed = now () -. t0 in
    let cmd = metric_name frame in
    Metrics.observe (Metrics.histogram cmd) elapsed;
    Metrics.observe t.h_request elapsed;
    if t.cfg.slow_threshold_s >= 0.0 && elapsed >= t.cfg.slow_threshold_s
    then record_slow t ~cmd ~info ~conn ~seconds:elapsed;
    (match resp with
     | Wire.Error _ -> Metrics.incr t.ctr.c_errors
     | _ -> ());
    send_resp t conn frame.Wire.id resp
  end

(* Workers drain the queue completely before exiting, which is what
   makes shutdown graceful: every request that was accepted is answered. *)
let worker_loop t =
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not (Atomic.get t.want_stop) do
      Condition.wait t.qcond t.qlock
    done;
    let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.qlock;
    match task with
    | Some task ->
        handle_task t task;
        loop ()
    | None -> () (* stopping and drained *)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let enqueue t conn frame ctx =
  Metrics.incr t.ctr.c_requests;
  conn.reqs <- conn.reqs + 1;
  if Atomic.get t.want_stop then
    send_error t conn frame.Wire.id Wire.Shutting_down "server is shutting down"
  else begin
    Mutex.lock t.qlock;
    let shed = Queue.length t.queue >= t.cfg.max_queue in
    if not shed then begin
      Queue.push
        { tconn = conn; tframe = frame; tctx = ctx; enqueued_at = now () }
        t.queue;
      Condition.signal t.qcond
    end;
    Mutex.unlock t.qlock;
    if shed then begin
      Metrics.incr t.ctr.c_shed;
      send_error t conn frame.Wire.id Wire.Overloaded
        (Printf.sprintf "request shed: queue full (%d deep)" t.cfg.max_queue)
    end
  end

(* Decode and dispatch every complete frame sitting in the connection's
   reassembly buffer. Loop thread only. The recoverable decode errors
   (bad version, malformed body) answer a structured error and keep
   going; the fatal ones (oversized — framing is lost) flush the error
   and close. *)
let rec drain_frames t conn =
  if conn.alive && not conn.fatal then
    match Wire.Dechunk.next conn.dechunk with
    | `Await -> ()
    | `Oversized n ->
        Metrics.incr t.ctr.c_malformed;
        send_error t conn 0 Wire.Protocol_error
          (Wire.decode_error_to_string (Wire.Oversized n));
        mark_fatal conn
    | `Payload payload ->
        (match Wire.decode_request payload with
         | Ok (frame, ctx) ->
             conn.last_active <- now ();
             enqueue t conn frame ctx
         | Error (Wire.Bad_version { id; got }) ->
             (* the frame was fully consumed: the connection survives *)
             Metrics.incr t.ctr.c_version_mismatch;
             send_error t conn
               (Option.value id ~default:0)
               Wire.Version_mismatch
               (Printf.sprintf
                  "peer speaks protocol v%d, this server speaks v%d (v%d \
                   still accepted)"
                  got Wire.protocol_version Wire.min_protocol_version);
             conn.last_active <- now ()
         | Error (Wire.Malformed { id; reason }) ->
             Metrics.incr t.ctr.c_malformed;
             send_error t conn
               (Option.value id ~default:0)
               Wire.Protocol_error ("malformed frame: " ^ reason);
             conn.last_active <- now ()
         | Error (Wire.Closed | Wire.Truncated _ | Wire.Oversized _) ->
             (* transport-level classifications cannot arise from a
                complete payload; treat as lost framing *)
             Metrics.incr t.ctr.c_malformed;
             mark_fatal conn);
        drain_frames t conn

(* One readable connection: read what the kernel has, reassemble,
   dispatch. EOF with a partial frame buffered is the stream-level
   [Truncated]: answer the error out loud, then close. *)
let handle_readable t rbuf conn =
  match Unix.read conn.fd rbuf 0 rbuf_size with
  | 0 ->
      if Wire.Dechunk.buffered conn.dechunk > 0 then begin
        Metrics.incr t.ctr.c_malformed;
        send_error t conn 0 Wire.Protocol_error
          (Wire.decode_error_to_string (Wire.Truncated "stream ended mid-frame"));
        mark_fatal conn
      end
      else mark_dead t conn
  | n ->
      Wire.Dechunk.feed conn.dechunk rbuf 0 n;
      drain_frames t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> mark_dead t conn

let admit t fd peer_addr =
  let peer =
    match peer_addr with
    | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    | Unix.ADDR_UNIX p -> p
  in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  Mutex.lock t.clock;
  let live = Hashtbl.length t.conns in
  let admitted = live < t.cfg.max_connections in
  let conn =
    if not admitted then None
    else begin
      t.next_cid <- t.next_cid + 1;
      let conn =
        { cid = t.next_cid;
          fd;
          peer;
          created_at = now ();
          wlock = Mutex.create ();
          alive = true;
          closed = false;
          last_active = now ();
          follower = false;
          dechunk = Wire.Dechunk.create ();
          wq = Queue.create ();
          wq_off = 0;
          wq_bytes = 0;
          fatal = false;
          fatal_at = 0.0;
          reqs = 0;
          paused_since = 0.0 }
      in
      Hashtbl.replace t.conns conn.cid conn;
      Metrics.set g_connections (float_of_int (Hashtbl.length t.conns));
      Some conn
    end
  in
  Mutex.unlock t.clock;
  match conn with
  | None ->
      Metrics.incr t.ctr.c_refused;
      Event.warn "net: refusing %s: %d/%d connections in use" peer live
        t.cfg.max_connections;
      (* the fd is still blocking here, so this small frame goes out
         without joining the event loop's bookkeeping *)
      (try
         Wire.write_frame fd
           (Wire.encode_response
              { id = 0;
                body =
                  Wire.Error
                    { code = Wire.Overloaded;
                      message =
                        Printf.sprintf "connection limit reached (%d)"
                          t.cfg.max_connections } })
       with Unix.Unix_error _ | Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | Some conn ->
      Unix.set_nonblock fd;
      Metrics.incr t.ctr.c_accepted;
      Event.debug ~fields:[ ("conn", string_of_int conn.cid) ]
        "net: accepted %s" peer

let rec accept_burst t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
    ->
      ()
  | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      (* out of fds: stop accepting this tick; pending connections stay
         in the listen backlog until capacity frees up *)
      Event.warn "net: accept failed: out of file descriptors"
  | exception Unix.Unix_error (err, _, _) ->
      (* anything else (ENOMEM, EPERM, proto errors surfaced by
         accept): log and give up on this tick rather than let the
         exception escape and kill the event-loop thread *)
      Event.warn "net: accept failed: %s" (Unix.error_message err)
  | fd, peer ->
      admit t fd peer;
      accept_burst t

let drain_wake t buf =
  let rec go () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let idle_scan t =
  List.iter
    (fun conn ->
      (* followers legitimately never send another frame after the
         subscribe: the traffic is all primary→follower pushes *)
      if conn.alive && (not conn.fatal) && (not conn.follower)
         && now () -. conn.last_active > t.cfg.idle_timeout_s
      then begin
        Metrics.incr t.ctr.c_idle_reaped;
        Event.info ~fields:[ ("conn", string_of_int conn.cid) ]
          "net: reaping idle connection %s" conn.peer;
        send_resp t conn 0 Wire.Bye;
        mark_fatal conn
      end)
    (conns_snapshot t)

(* Drain phase of the teardown: every reply the workers produced is
   sitting in a write queue; push the queues out (bounded — a peer that
   refuses to read forfeits its replies after [flush_grace_s]). *)
let flush_grace_s = 5.0

let teardown t =
  (* no new connections *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* wake idle workers so they can observe the stop flag and drain:
     every accepted request gets its reply queued *)
  Mutex.lock t.qlock;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qlock;
  List.iter Thread.join t.worker_threads;
  (* retire the replication plane: the publisher exits on the stop
     flag, then every sender is woken with its follower marked dead *)
  (match t.publisher with Some th -> Thread.join th | None -> ());
  let fls =
    Mutex.lock t.rlock;
    let l = t.followers in
    t.followers <- [];
    Mutex.unlock t.rlock;
    l
  in
  List.iter
    (fun fl ->
      fl.fl_dead <- true;
      fl.fl_reason <- "primary shutting down";
      fl.fl_dead_at <- now ();
      Mutex.lock fl.fl_qlock;
      Condition.broadcast fl.fl_qcond;
      Mutex.unlock fl.fl_qlock)
    fls;
  List.iter
    (fun fl ->
      match fl.fl_sender with Some th -> Thread.join th | None -> ())
    fls;
  (* say goodbye, then flush all write queues out *)
  List.iter
    (fun conn -> if conn.alive then send_resp t conn 0 Wire.Bye)
    (conns_snapshot t);
  let deadline = now () +. flush_grace_s in
  let rec flush_all () =
    let pending =
      List.filter (fun c -> c.alive && c.wq_bytes > 0) (conns_snapshot t)
    in
    if pending <> [] && now () < deadline then begin
      let arr = Array.of_list pending in
      let n = Array.length arr in
      let spec = Array.make (2 * n) 0 in
      Array.iteri
        (fun i c ->
          spec.(2 * i) <- Evpoll.fd_int c.fd;
          spec.((2 * i) + 1) <- Evpoll.wr)
        arr;
      (match Evpoll.poll spec n 100 with
       | res ->
           Array.iteri
             (fun i c ->
               if res.(i) land Evpoll.er <> 0 then mark_dead t c
               else if res.(i) land Evpoll.wr <> 0 then flush_writes c)
             arr
       | exception _ -> Thread.delay 0.05);
      flush_all ()
    end
  in
  flush_all ();
  List.iter (fun conn -> close_conn t conn) (conns_snapshot t);
  (* retire the telemetry sampler (joins its thread; the watchdog hook
     only takes short-lived locks, so this cannot deadlock) *)
  (match t.sampler with
   | Some s ->
       Series.stop s;
       t.sampler <- None
   | None -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Event.info "net: service stopped"

(* The loop: one poll(2) over the wake pipe, the listen socket, and
   every live connection. Read-interest is withdrawn from connections
   over the write high-water mark (backpressure) and from fatal ones
   (flush-then-close); write-interest exists only while bytes are
   queued, so an idle connection costs nothing but its table entry. *)
let event_loop t =
  let rbuf = Bytes.create rbuf_size in
  let wakebuf = Bytes.create 256 in
  let last_scan = ref (now ()) in
  while not (Atomic.get t.want_stop) do
    (* the whole tick is guarded: an unexpected exception from any
       dispatch path must not kill the only thread that accepts, reads,
       writes and closes — log it and keep ticking *)
    try
    (* stall-injection point for the watchdog tests: an armed
       [Loop_stall] hit wedges this thread for a while instead of
       raising, exactly the failure the watchdog exists to catch *)
    (match Icdb.Faultinject.hit Icdb.Faultinject.Loop_stall with
     | () -> ()
     | exception _ -> Thread.delay 1.5);
    (* reap: close what was marked dead, what finished flushing, and
       any fatal connection whose peer would not drain its courtesy
       frame within the flush grace (it forfeits the frame; the fd and
       max_connections slot must not leak behind its write queue) *)
    List.iter
      (fun c ->
        if (not c.alive)
           || (c.fatal
               && (c.wq_bytes = 0 || now () -. c.fatal_at > flush_grace_s))
        then close_conn t c)
      (conns_snapshot t);
    let live = List.filter (fun c -> c.alive) (conns_snapshot t) in
    let arr = Array.of_list live in
    let nconns = Array.length arr in
    let nfds = 2 + nconns in
    let spec = Array.make (2 * nfds) 0 in
    spec.(0) <- Evpoll.fd_int t.wake_r;
    spec.(1) <- Evpoll.rd;
    spec.(2) <- Evpoll.fd_int t.listen_fd;
    spec.(3) <- Evpoll.rd;
    Array.iteri
      (fun i c ->
        let want_read = (not c.fatal) && c.wq_bytes < wq_hiwater in
        (* read-pause transition bookkeeping for the watchdog and the
           backpressure counters; reads of [paused_since] elsewhere are
           racy snapshots, writes happen only here *)
        if want_read then begin
          if c.paused_since > 0.0 then c.paused_since <- 0.0
        end
        else if (not c.fatal) && c.paused_since = 0.0 then begin
          c.paused_since <- now ();
          Metrics.incr t.ctr.c_bp_pauses
        end;
        let ev =
          (if want_read then Evpoll.rd else 0)
          lor (if c.wq_bytes > 0 then Evpoll.wr else 0)
        in
        spec.((2 * (i + 2))) <- Evpoll.fd_int c.fd;
        spec.((2 * (i + 2)) + 1) <- ev)
      arr;
    let t_poll = now () in
    (match Evpoll.poll spec nfds 200 with
     | res ->
         let t_disp = now () in
         Metrics.observe t.h_poll_wait (t_disp -. t_poll);
         if res.(0) land Evpoll.rd <> 0 then drain_wake t wakebuf;
         if (not (Atomic.get t.want_stop)) && res.(1) land Evpoll.rd <> 0 then
           accept_burst t;
         Array.iteri
           (fun i c ->
             let r = res.(i + 2) in
             if r land Evpoll.er <> 0 then mark_dead t c
             else begin
               if r land Evpoll.wr <> 0 then flush_writes c;
               (* re-check interest: the flush may have erred the
                  connection out, and POLLHUP reports as readable even
                  on read-paused connections *)
               if r land Evpoll.rd <> 0 && c.alive && (not c.fatal)
                  && c.wq_bytes < wq_hiwater
               then handle_readable t rbuf c
             end)
           arr;
         Metrics.observe t.h_dispatch (now () -. t_disp)
     | exception _ -> Thread.delay 0.05);
    if now () -. !last_scan >= 1.0 then begin
      last_scan := now ();
      idle_scan t
    end;
    t.loop_heartbeat <- now ()
    with e ->
      Event.warn "net: event loop tick failed: %s" (Printexc.to_string e);
      Thread.delay 0.05
  done;
  teardown t

(* ------------------------------------------------------------------ *)
(* Continuous telemetry & stall watchdog                               *)
(* ------------------------------------------------------------------ *)

(* The loop heartbeat may go this many sampler periods stale before the
   watchdog calls the loop wedged; floored at 1 s because an idle loop
   legitimately parks in poll(2) for its 200 ms timeout per tick. *)
let wd_stall_periods = 5

(* A connection read-paused (over the write high-water mark) longer
   than this is evidence the loop stopped draining writes — or that a
   peer is being slowly poisoned — either way worth alarming on. *)
let wd_pause_bound_s = 30.0

let wd_stall_bound_s t =
  Float.max 1.0 (float_of_int wd_stall_periods *. t.cfg.telemetry_period_s)

let g_wd_tripped = Metrics.gauge "net.watchdog.tripped"

(* Runs on every sampler tick. Detects: a stale loop heartbeat (the
   loop is wedged), a burst of missed sampler deadlines (the whole
   process was wedged — scheduler starvation, a stop-the-world pause),
   or a connection paused past bound. Trip/recover transitions emit
   structured events; the current verdict surfaces in /healthz. *)
let watchdog_check t sampler =
  let t0 = now () in
  let missed = Series.missed_deadlines sampler in
  let missed_delta = missed - t.wd_missed_seen in
  t.wd_missed_seen <- missed;
  let reason =
    let stale = t0 -. t.loop_heartbeat in
    if stale > wd_stall_bound_s t then
      Printf.sprintf "event loop stalled: no tick for %.2f s (bound %.2f s)"
        stale (wd_stall_bound_s t)
    else if missed_delta >= wd_stall_periods then
      Printf.sprintf "sampler missed %d consecutive deadlines (period %g s)"
        missed_delta t.cfg.telemetry_period_s
    else
      match
        List.find_opt
          (fun c ->
            c.alive && c.paused_since > 0.0
            && t0 -. c.paused_since > wd_pause_bound_s)
          (conns_snapshot t)
      with
      | Some c ->
          Printf.sprintf
            "connection %d (%s) read-paused for %.0f s (%d bytes unread)"
            c.cid c.peer (t0 -. c.paused_since) c.wq_bytes
      | None -> ""
  in
  if reason <> "" then begin
    if not t.wd_tripped then begin
      Metrics.incr t.ctr.c_wd_trips;
      Metrics.set g_wd_tripped 1.0;
      Event.error ~fields:[ ("reason", reason) ] "net: stall watchdog tripped"
    end;
    t.wd_tripped <- true;
    t.wd_reason <- reason
  end
  else if t.wd_tripped then begin
    Metrics.set g_wd_tripped 0.0;
    Event.info ~fields:[ ("was", t.wd_reason) ]
      "net: stall watchdog recovered";
    t.wd_tripped <- false;
    t.wd_reason <- ""
  end

(* Build the sampler: delta series for traffic counters, percentile
   series for the latency ramps, and poll series that both record
   history and refresh same-named registry gauges so /metrics shows the
   live values. Runs only when [telemetry_period_s > 0]. *)
let setup_telemetry t =
  if t.cfg.telemetry_period_s > 0.0 then begin
    let s = Series.create ~cap:600 ~period_s:t.cfg.telemetry_period_s () in
    let add name src = ignore (Series.add s name src) in
    let poll name f =
      let g = Metrics.gauge name in
      add name
        (Series.Poll
           (fun () ->
             let v = f () in
             Metrics.set g v;
             v))
    in
    add "net.requests" (Series.Counter t.ctr.c_requests);
    add "net.errors" (Series.Counter t.ctr.c_errors);
    add "net.queue_wait.p99" (Series.Percentile (t.h_queue_wait, 0.99));
    add "net.request_s.p99" (Series.Percentile (t.h_request, 0.99));
    add "net.loop.poll_wait.p99" (Series.Percentile (t.h_poll_wait, 0.99));
    add "net.loop.dispatch.p99" (Series.Percentile (t.h_dispatch, 0.99));
    poll "net.queue_depth" (fun () ->
        Mutex.lock t.qlock;
        let n = Queue.length t.queue in
        Mutex.unlock t.qlock;
        float_of_int n);
    poll "net.queue_age_s" (fun () ->
        Mutex.lock t.qlock;
        let v =
          match Queue.peek_opt t.queue with
          | Some task -> now () -. task.enqueued_at
          | None -> 0.0
        in
        Mutex.unlock t.qlock;
        v);
    poll "net.wq_bytes" (fun () ->
        float_of_int
          (List.fold_left
             (fun acc c -> acc + c.wq_bytes)
             0 (conns_snapshot t)));
    let count_state st () =
      float_of_int
        (List.length
           (List.filter
              (fun c -> c.alive && conn_state c = st)
              (conns_snapshot t)))
    in
    poll "net.conns.active" (count_state "active");
    poll "net.conns.paused" (count_state "paused");
    poll "net.conns.fatal" (count_state "fatal");
    add "repl.followers" (Series.Gauge g_followers);
    (* lag gauges are written by Replica on a follower; on a primary
       they exist and stay 0, so the series is always well-defined *)
    add "repl.lag_records" (Series.Gauge (Metrics.gauge "repl.lag_records"));
    add "repl.lag_seconds" (Series.Gauge (Metrics.gauge "repl.lag_seconds"));
    add "process.open_fds"
      (Series.Poll
         (fun () ->
           Expo.update_process_gauges ();
           Expo.g_open_fds.Metrics.gvalue));
    Series.on_tick s (fun () -> watchdog_check t s);
    t.sampler <- Some s;
    Series.start s
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let counters () =
  { c_accepted = Metrics.counter "net.accepted";
    c_refused = Metrics.counter "net.refused";
    c_closed = Metrics.counter "net.closed";
    c_requests = Metrics.counter "net.requests";
    c_errors = Metrics.counter "net.errors";
    c_shed = Metrics.counter "net.shed";
    c_timeouts = Metrics.counter "net.timeouts";
    c_malformed = Metrics.counter "net.malformed";
    c_version_mismatch = Metrics.counter "net.version_mismatch";
    c_idle_reaped = Metrics.counter "net.idle_reaped";
    c_bp_pauses = Metrics.counter "net.backpressure.pauses";
    c_bp_kills = Metrics.counter "net.backpressure.kills";
    c_wd_trips = Metrics.counter "net.watchdog.trips" }

let start ?(config = default_config) sync =
  (* a dead peer must surface as EPIPE on the write, not kill the
     process; set here (not only in the CLI) so library embedders and
     the replication senders are covered *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 256;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    { cfg = config;
      sync;
      listen_fd;
      bound_port;
      want_stop = Atomic.make false;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      conns = Hashtbl.create 64;
      clock = Mutex.create ();
      next_cid = 0;
      worker_threads = [];
      loop_thread = None;
      wake_r;
      wake_w;
      rlock = Mutex.create ();
      followers = [];
      publisher = None;
      ctr = counters ();
      h_queue_wait = Metrics.histogram "net.queue_wait";
      h_request = Metrics.histogram "net.request_s";
      h_poll_wait = Metrics.histogram "net.loop.poll_wait";
      h_dispatch = Metrics.histogram "net.loop.dispatch";
      slock = Mutex.create ();
      slow_ring = Array.make slow_cap None;
      slow_next = 0;
      last_slow_warn = 0.0;
      sampler = None;
      loop_heartbeat = now ();
      wd_tripped = false;
      wd_reason = "";
      wd_missed_seen = 0 }
  in
  t.worker_threads <-
    List.init (max 1 config.workers) (fun _ -> Thread.create worker_loop t);
  t.loop_thread <- Some (Thread.create event_loop t);
  (* a follower never publishes; only primaries run the poll loop *)
  if not config.read_only then
    t.publisher <- Some (Thread.create publisher_loop t);
  Expo.update_process_gauges ();
  setup_telemetry t;
  Event.info
    "net: icdbd listening on %s:%d (%d workers, %d connections max, event loop)"
    config.host bound_port (max 1 config.workers) config.max_connections;
  t

let port t = t.bound_port
let config t = t.cfg
let stopping t = Atomic.get t.want_stop

let queue_depth t =
  Mutex.lock t.qlock;
  let n = Queue.length t.queue in
  Mutex.unlock t.qlock;
  n

let slow_log t =
  Mutex.lock t.slock;
  let l = slow_snapshot_locked t in
  Mutex.unlock t.slock;
  l

let follower_count t =
  Mutex.lock t.rlock;
  let n = List.length t.followers in
  Mutex.unlock t.rlock;
  n

let sampler t = t.sampler

let watchdog t = (t.wd_tripped, t.wd_reason)

let request_shutdown t =
  Atomic.set t.want_stop true;
  wake t

let wait t =
  match t.loop_thread with Some th -> Thread.join th | None -> ()

let shutdown t =
  request_shutdown t;
  wait t
