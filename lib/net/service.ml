(* icdbd: accept loop + per-connection readers + worker pool over one
   locked Server.t. See service.mli for the admission-control and
   shutdown contracts, and sync.mli for the locking discipline.

   Thread ownership rules, which keep the teardown free of races:
   - the accept thread is the only one that creates connections and the
     only one that runs [teardown];
   - each reader thread is the only one that reads its socket and the
     only one that closes it (via [kill_conn], also called from its
     [Fun.protect] finalizer);
   - any thread may write a response, serialized by the connection's
     write lock; writes after death are silently dropped;
   - workers never join other threads, so a [Shutdown] frame handled in
     a worker only flips the stop flag and lets the accept thread do
     the teardown. *)

open Icdb_obs

type config = {
  host : string;
  port : int;
  max_connections : int;
  workers : int;
  max_queue : int;
  request_timeout_s : float;
  idle_timeout_s : float;
  slow_threshold_s : float;
  read_only : bool;
  repl_max_lag : int;
  repl_batch : int;
}

let default_config =
  { host = "127.0.0.1";
    port = 7601;
    max_connections = 64;
    workers = 4;
    max_queue = 128;
    request_timeout_s = 30.0;
    idle_timeout_s = 300.0;
    slow_threshold_s = 1.0;
    read_only = false;
    repl_max_lag = 10_000;
    repl_batch = 512 }

type conn = {
  cid : int;
  fd : Unix.file_descr;
  peer : string;
  wlock : Mutex.t;             (* serializes writes and the close *)
  mutable alive : bool;        (* false once the fd is closed *)
  mutable last_active : float; (* wall clock of the last complete frame *)
  mutable rthread : Thread.t option;
  mutable follower : bool;     (* subscribed replication follower: exempt
                                  from idle reaping, fed by the publisher *)
}

(* One subscribed follower, owned by the publisher. The per-follower
   frame queue decouples journal streaming from each follower's TCP
   backpressure: the publisher never blocks on a socket, a dedicated
   sender thread per follower does the (possibly slow) writes, and a
   follower whose queue grows past [repl_max_lag] records is shed. *)
type follower = {
  fl_conn : conn;
  fl_rid : int;                (* subscribe request id, echoed on pushes *)
  mutable fl_cursor : int;     (* next journal sequence number to stream *)
  fl_qlock : Mutex.t;
  fl_qcond : Condition.t;
  fl_frames : (string * int) Queue.t;  (* encoded frame, record count *)
  mutable fl_queued : int;     (* records sitting in [fl_frames] *)
  mutable fl_sender : Thread.t option;
  mutable fl_dead : bool;      (* shed or shutting down *)
  mutable fl_reason : string;  (* why, for the courtesy Repl_error *)
  mutable fl_dead_at : float;
  mutable fl_last_sent : float;  (* heartbeat pacing *)
}

type task = {
  tconn : conn;
  tframe : Wire.req Wire.frame;
  tctx : Wire.ctx;
  enqueued_at : float;
}

type counters = {
  c_accepted : Metrics.counter;
  c_refused : Metrics.counter;
  c_closed : Metrics.counter;
  c_requests : Metrics.counter;
  c_errors : Metrics.counter;
  c_shed : Metrics.counter;
  c_timeouts : Metrics.counter;
  c_malformed : Metrics.counter;
  c_version_mismatch : Metrics.counter;
  c_idle_reaped : Metrics.counter;
}

type t = {
  cfg : config;
  sync : Sync.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  want_stop : bool Atomic.t;
  queue : task Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  conns : (int, conn) Hashtbl.t;
  clock : Mutex.t;        (* guards [conns] and [next_cid] *)
  mutable next_cid : int;
  mutable worker_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  rlock : Mutex.t;        (* guards [followers] *)
  mutable followers : follower list;
  mutable publisher : Thread.t option;
  ctr : counters;
  h_queue_wait : Metrics.histogram;
  (* Slow-query log: a small newest-first list of requests that took
     longer than [slow_threshold_s], bounded at [slow_cap]. *)
  slock : Mutex.t;
  mutable slow : Wire.slow_entry list;
  mutable last_slow_warn : float;  (* rate limit for the warn event *)
}

let slow_cap = 64

let now () = Unix.gettimeofday ()

(* Primary-side replication metrics. *)
let g_followers = Metrics.gauge "repl.followers"
let c_batches_sent = Metrics.counter "repl.batches_sent"
let c_records_sent = Metrics.counter "repl.records_sent"
let c_followers_shed = Metrics.counter "repl.followers_shed"
let c_checkpoints_sent = Metrics.counter "repl.checkpoints_sent"
let c_readonly_rejected = Metrics.counter "repl.readonly_rejected"

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)
(* ------------------------------------------------------------------ *)

(* Send pre-encoded bytes; a dead peer just marks the connection so the
   reader notices on its next tick. *)
let send_bytes conn bytes =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      if conn.alive then
        try Wire.write_frame conn.fd bytes
        with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false)

let send_resp conn id body = send_bytes conn (Wire.encode_response { id; body })

let send_error t conn id code message =
  Metrics.incr t.ctr.c_errors;
  send_resp conn id (Wire.Error { code; message })

(* Close the socket and unregister; the write lock orders the close
   against any in-flight response write. Idempotent. *)
let kill_conn t conn =
  Mutex.lock conn.wlock;
  let was_alive = conn.alive in
  if was_alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock conn.wlock;
  if was_alive then begin
    Mutex.lock t.clock;
    Hashtbl.remove t.conns conn.cid;
    Mutex.unlock t.clock;
    Metrics.incr t.ctr.c_closed;
    Event.debug ~fields:[ ("conn", string_of_int conn.cid) ]
      "net: connection %s closed" conn.peer
  end

(* ------------------------------------------------------------------ *)
(* Request execution (worker side)                                     *)
(* ------------------------------------------------------------------ *)

(* CQL commands that mutate the database or workspace; a read-only
   follower refuses them with a structured [Read_only] error so clients
   can redirect to the primary. Everything else — catalog queries,
   component/implementation/instance lookups — is served locally. *)
let mutating_cql =
  [ "request_component"; "start_a_design"; "start_a_transaction";
    "put_in_component_list"; "end_a_transaction"; "end_a_design" ]

let sql_first_word stmt =
  let n = String.length stmt in
  let i = ref 0 in
  while
    !i < n && (match stmt.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    incr i
  done;
  let j = ref !i in
  while
    !j < n && (match stmt.[!j] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  do
    incr j
  done;
  String.uppercase_ascii (String.sub stmt !i (!j - !i))

(* [Some resp] when a read-only follower must refuse the request. A CQL
   text that does not parse is let through: the executor produces the
   better (Parse_error) diagnostic. *)
let read_only_reject t (body : Wire.req) =
  if not t.cfg.read_only then None
  else
    let refuse what =
      Metrics.incr c_readonly_rejected;
      Some
        (Wire.Error
           { code = Wire.Read_only;
             message =
               Printf.sprintf
                 "follower is read-only: %s mutates the database; send it \
                  to the primary"
                 what })
    in
    match body with
    | Wire.Cql { text; _ } -> (
        match Icdb_cql.Command.parse text with
        | cmd -> (
            match Icdb_cql.Command.command_name cmd with
            | name when List.mem name mutating_cql -> refuse ("CQL " ^ name)
            | _ -> None
            | exception Icdb_cql.Command.Cql_error _ -> None)
        | exception Icdb_cql.Command.Cql_error _ -> None)
    | Wire.Sql stmt ->
        if sql_first_word stmt = "SELECT" then None
        else refuse "this SQL statement"
    | _ -> None

let cql_metric_name text =
  match Icdb_cql.Command.parse text with
  | cmd -> (
      match Icdb_cql.Command.command_name cmd with
      | name -> "net.cql." ^ name
      | exception Icdb_cql.Command.Cql_error _ -> "net.cql.invalid")
  | exception Icdb_cql.Command.Cql_error _ -> "net.cql.invalid"

let stats_payload t =
  let st = Sync.with_server t.sync Icdb.Server.stats in
  let sp_text =
    Printf.sprintf
      "server cache: %d hits, %d reuse hits, %d misses, %d evictions, %d \
       entries; memo %d/%d"
      st.Icdb.Server.st_hits st.Icdb.Server.st_reuse_hits
      st.Icdb.Server.st_misses st.Icdb.Server.st_evictions
      st.Icdb.Server.st_entries st.Icdb.Server.st_memo_hits
      st.Icdb.Server.st_memo_misses
  in
  let reg = Metrics.default in
  let sp_counters =
    List.map
      (fun (c : Metrics.counter) -> (c.Metrics.cname, c.Metrics.count))
      (Metrics.counters reg)
  in
  let sp_gauges =
    List.map
      (fun (g : Metrics.gauge) -> (g.Metrics.gname, g.Metrics.gvalue))
      (Metrics.gauges reg)
  in
  let sp_hists =
    List.map
      (fun h ->
        let s = Metrics.summary h in
        { Wire.hs_name = s.Metrics.s_name;
          hs_count = s.Metrics.s_count;
          hs_sum = s.Metrics.s_sum;
          hs_min = s.Metrics.s_min;
          hs_max = s.Metrics.s_max;
          hs_p50 = s.Metrics.s_p50;
          hs_p90 = s.Metrics.s_p90;
          hs_p99 = s.Metrics.s_p99 })
      (Metrics.histograms reg)
  in
  let sp_slow =
    Mutex.lock t.slock;
    let l = t.slow in
    Mutex.unlock t.slock;
    l
  in
  { Wire.sp_text; sp_counters; sp_gauges; sp_hists; sp_slow }

let remote_of_span (s : Trace.span) =
  { Wire.rs_id = s.Trace.sid;
    rs_parent = s.Trace.sparent;
    rs_name = s.Trace.sname;
    rs_tag = (match s.Trace.stag with Some tag -> tag | None -> "");
    rs_start_ns = s.Trace.sstart_ns;
    rs_dur_ns = s.Trace.sdur_ns;
    rs_attrs = s.Trace.sattrs }

(* What a worker learns while executing one request, for the slow-query
   log: the owner tag its spans carry, whether the component cache
   answered, and where the time went. *)
type exec_info = {
  mutable xi_tag : string;
  mutable xi_cache : string;
  mutable xi_phases : (string * float) list;
}

(* Run [f server] with every span tagged [tag]. A request that sent a
   trace id gets tracing even when the server runs untraced: the flag
   flip is safe because it happens under the server lock, which is
   where all span traffic lives (see sync.mli). *)
let with_request_trace t ~tag ~attrs info f =
  Sync.with_server t.sync (fun server ->
      let saved = Trace.enabled () in
      if tag <> "" then Trace.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Trace.set_enabled saved)
        (fun () ->
          let ch = Metrics.counter "cache.hit" in
          let cr = Metrics.counter "cache.reuse_hit" in
          let cm = Metrics.counter "cache.miss" in
          let h0 = ch.Metrics.count + cr.Metrics.count in
          let m0 = cm.Metrics.count in
          let mark = Trace.finished_count () in
          let run () = f server in
          let result =
            if tag = "" then run ()
            else
              Trace.with_tag tag (fun () ->
                  Trace.with_span "net.request" ~attrs run)
          in
          info.xi_cache <-
            (if ch.Metrics.count + cr.Metrics.count > h0 then "hit"
             else if cm.Metrics.count > m0 then "miss"
             else "-");
          info.xi_phases <- Trace.phase_totals (Trace.since mark);
          result))

(* Execute one framed request to a response body, classifying every
   expected failure as a structured error code. *)
let execute t conn (frame : Wire.req Wire.frame) (ctx : Wire.ctx) info :
    Wire.resp =
  (* the owner tag for this request's spans: the client's trace id when
     it sent one, else a server-assigned conn/request tag so concurrent
     requests never interleave anonymously *)
  let tag =
    if ctx.Wire.trace_id <> "" then ctx.Wire.trace_id
    else if Trace.enabled () then
      Printf.sprintf "c%d.r%d" conn.cid frame.id
    else ""
  in
  info.xi_tag <- tag;
  let attrs =
    [ ("conn", string_of_int conn.cid);
      ("request", string_of_int frame.id) ]
  in
  match read_only_reject t frame.body with
  | Some resp -> resp
  | None -> (
  match frame.body with
  | Wire.Ping -> Wire.Pong
  | Wire.Stats -> Wire.Stats_report (stats_payload t)
  | Wire.Trace_fetch want ->
      (* the ring is only consistent under the server lock *)
      let spans = Sync.with_server t.sync (fun _ -> Trace.tagged want) in
      Wire.Spans (List.map remote_of_span spans)
  | Wire.Shutdown ->
      Event.info "net: shutdown requested by %s" conn.peer;
      Atomic.set t.want_stop true;
      Wire.Bye
  | Wire.Sql stmt -> (
      match
        with_request_trace t ~tag ~attrs info (fun server ->
            Icdb_reldb.Sql.exec (Icdb.Server.db server) stmt)
      with
      | Icdb_reldb.Sql.Affected n -> Wire.Sql_result (Wire.Affected n)
      | Icdb_reldb.Sql.Relation rel ->
          let cols = List.map fst rel.Icdb_reldb.Query.rschema in
          let rows =
            List.map
              (fun row ->
                Array.to_list (Array.map Icdb_reldb.Value.to_string row))
              rel.Icdb_reldb.Query.rrows
          in
          Wire.Sql_result (Wire.Relation { cols; rows })
      | exception Icdb_reldb.Sql.Sql_error msg ->
          Wire.Error { code = Wire.Sql_error; message = msg })
  | Wire.Cql { text; args } -> (
      match
        with_request_trace t ~tag ~attrs info (fun server ->
            Icdb_cql.Exec.run server ~args text)
      with
      | results -> Wire.Results results
      | exception Icdb_cql.Exec.Cql_error msg ->
          Wire.Error { code = Wire.Parse_error; message = msg }
      | exception Icdb.Server.Icdb_error msg ->
          Wire.Error { code = Wire.Exec_error; message = msg }
      | exception Icdb_reldb.Sql.Sql_error msg ->
          Wire.Error { code = Wire.Sql_error; message = msg })
  | Wire.Subscribe _ ->
      (* routed to [handle_subscribe] before execution ever reaches
         here; answering makes the match exhaustive *)
      Wire.Repl_error "subscribe cannot be executed as a plain request")

let metric_name (frame : Wire.req Wire.frame) =
  match frame.body with
  | Wire.Ping -> "net.ping"
  | Wire.Stats -> "net.stats"
  | Wire.Trace_fetch _ -> "net.trace_fetch"
  | Wire.Shutdown -> "net.shutdown"
  | Wire.Sql _ -> "net.sql"
  | Wire.Subscribe _ -> "net.subscribe"
  | Wire.Cql { text; _ } -> cql_metric_name text

let record_slow t ~cmd ~info ~conn ~seconds =
  let entry =
    { Wire.sl_cmd = cmd;
      sl_trace = info.xi_tag;
      sl_conn = conn.cid;
      sl_seconds = seconds;
      sl_cache = info.xi_cache;
      sl_phases = info.xi_phases }
  in
  let do_warn =
    Mutex.lock t.slock;
    t.slow <- entry :: (if List.length t.slow >= slow_cap then
                          List.filteri (fun i _ -> i < slow_cap - 1) t.slow
                        else t.slow);
    let tnow = now () in
    let warn = tnow -. t.last_slow_warn >= 1.0 in
    if warn then t.last_slow_warn <- tnow;
    Mutex.unlock t.slock;
    warn
  in
  Metrics.incr (Metrics.counter "net.slow_requests");
  if do_warn then
    Event.warn
      ~fields:
        [ ("cmd", cmd);
          ("trace", info.xi_tag);
          ("conn", string_of_int conn.cid);
          ("cache", info.xi_cache);
          ("seconds", Printf.sprintf "%.3f" seconds) ]
      "net: slow request (%.3f s > %.3f s threshold)" seconds
      t.cfg.slow_threshold_s

(* ------------------------------------------------------------------ *)
(* Replication publisher (primary side)                                *)
(* ------------------------------------------------------------------ *)

let snapshot_name = "icdb.snapshot"
let chunk_bytes = 1 lsl 20

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* What a fresh follower needs besides the journal stream: the snapshot
   plus every netlist/IIF artifact in the workspace. *)
let checkpoint_files workspace =
  let all = try Sys.readdir workspace with Sys_error _ -> [||] in
  Array.to_list all
  |> List.filter (fun name ->
         name = snapshot_name
         || Filename.check_suffix name ".vhdl"
         || Filename.check_suffix name ".iif")
  |> List.sort compare

(* Mark a follower for removal without doing anything that could block:
   the publisher calls this, and the publisher must never wait on a
   follower's socket. The sender thread wakes, sends the courtesy
   [Repl_error] (its own thread may block there harmlessly) and closes
   the connection; a sender wedged in a write is forced out when the
   publisher shuts the socket down after a grace period. *)
let shed_follower fl reason =
  if not fl.fl_dead then begin
    fl.fl_dead <- true;
    fl.fl_reason <- reason;
    fl.fl_dead_at <- now ();
    Metrics.incr c_followers_shed;
    Event.warn
      ~fields:[ ("conn", string_of_int fl.fl_conn.cid) ]
      "repl: dropping follower %s: %s" fl.fl_conn.peer reason;
    Mutex.lock fl.fl_qlock;
    Condition.broadcast fl.fl_qcond;
    Mutex.unlock fl.fl_qlock
  end

(* Per-follower sender: drains the frame queue into the socket, so TCP
   backpressure from one follower stalls only this thread. *)
let sender_loop t fl =
  let rec loop () =
    Mutex.lock fl.fl_qlock;
    while Queue.is_empty fl.fl_frames && not fl.fl_dead && fl.fl_conn.alive do
      Condition.wait fl.fl_qcond fl.fl_qlock
    done;
    let item =
      if Queue.is_empty fl.fl_frames then None
      else begin
        let bytes, n = Queue.pop fl.fl_frames in
        fl.fl_queued <- fl.fl_queued - n;
        Some bytes
      end
    in
    Mutex.unlock fl.fl_qlock;
    match item with
    | Some bytes when fl.fl_conn.alive && not fl.fl_dead ->
        send_bytes fl.fl_conn bytes;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if fl.fl_dead && fl.fl_conn.alive then
    send_resp fl.fl_conn fl.fl_rid (Wire.Repl_error fl.fl_reason);
  kill_conn t fl.fl_conn

(* The subscribe handshake, run on the worker that picked the frame up.
   Under the server lock, decide whether the follower's cursor is still
   inside the journal window (stream from it) or stale/fresh (checkpoint
   first, then stream from the post-checkpoint cursor); ship the
   checkpoint synchronously, then hand the follower to the publisher. *)
let handle_subscribe t conn rid cursor =
  if t.cfg.read_only then
    send_resp conn rid
      (Wire.Repl_error "this node is a follower; subscribe to the primary")
  else begin
    let plan =
      Sync.with_server t.sync (fun server ->
          if not (Icdb.Server.durable server) then
            Error "primary is not durable: start it with --durable"
          else
            match Icdb_reldb.Db.journal (Icdb.Server.db server) with
            | None -> Error "primary has no journal attached"
            | Some j ->
                let base = Icdb_reldb.Journal.base_seq j in
                let next = Icdb_reldb.Journal.next_seq j in
                if cursor >= base && cursor <= next then Ok (`Stream cursor)
                else begin
                  (* absorb the journal so the window starts exactly at
                     the cursor the checkpoint is handed out with *)
                  Icdb.Server.checkpoint server;
                  let c = Icdb_reldb.Journal.next_seq j in
                  let ws = Icdb.Server.workspace server in
                  let files =
                    List.filter_map
                      (fun name ->
                        match read_file (Filename.concat ws name) with
                        | data -> Some (name, data)
                        | exception Sys_error _ -> None)
                      (checkpoint_files ws)
                  in
                  Ok (`Checkpoint (c, files))
                end)
    in
    match plan with
    | Error msg -> send_resp conn rid (Wire.Repl_error msg)
    | Ok plan ->
        conn.follower <- true;
        let start_cursor =
          match plan with
          | `Stream c ->
              Event.info
                ~fields:[ ("conn", string_of_int conn.cid) ]
                "repl: follower %s subscribed at cursor %d" conn.peer c;
              c
          | `Checkpoint (c, files) ->
              Metrics.incr c_checkpoints_sent;
              Event.info
                ~fields:[ ("conn", string_of_int conn.cid) ]
                "repl: follower %s needs a checkpoint (%d files, cursor %d)"
                conn.peer (List.length files) c;
              send_resp conn rid
                (Wire.Checkpoint_offer
                   { co_cursor = c; co_files = List.length files });
              let nfiles = List.length files in
              List.iteri
                (fun i (name, data) ->
                  let len = String.length data in
                  let nchunks = max 1 ((len + chunk_bytes - 1) / chunk_bytes) in
                  for k = 0 to nchunks - 1 do
                    let off = k * chunk_bytes in
                    send_resp conn rid
                      (Wire.Checkpoint_chunk
                         { cc_name = name;
                           cc_data =
                             String.sub data off (min chunk_bytes (len - off));
                           cc_last = i = nfiles - 1 && k = nchunks - 1 })
                  done)
                files;
              (* an empty checkpoint still needs its terminator *)
              if files = [] then
                send_resp conn rid
                  (Wire.Checkpoint_chunk
                     { cc_name = ""; cc_data = ""; cc_last = true });
              c
        in
        let fl =
          { fl_conn = conn;
            fl_rid = rid;
            fl_cursor = start_cursor;
            fl_qlock = Mutex.create ();
            fl_qcond = Condition.create ();
            fl_frames = Queue.create ();
            fl_queued = 0;
            fl_sender = None;
            fl_dead = false;
            fl_reason = "";
            fl_dead_at = 0.0;
            fl_last_sent = 0.0 }
        in
        fl.fl_sender <- Some (Thread.create (sender_loop t) fl);
        Mutex.lock t.rlock;
        t.followers <- fl :: t.followers;
        Metrics.set g_followers (float_of_int (List.length t.followers));
        Mutex.unlock t.rlock
  end

(* One publisher tick for one follower: stream the next batch of journal
   records (plus the workspace files they depend on) into its queue, or
   shed it. Empty batches are heartbeats, paced at 1 Hz, carrying the
   primary's [next_seq] so the follower can measure its lag. *)
let publish_one t fl =
  if (not fl.fl_dead) && fl.fl_conn.alive then begin
    let queued, frames =
      Mutex.lock fl.fl_qlock;
      let q = (fl.fl_queued, Queue.length fl.fl_frames) in
      Mutex.unlock fl.fl_qlock;
      q
    in
    if queued > t.cfg.repl_max_lag || frames > 512 then
      shed_follower fl
        (Printf.sprintf
           "follower lag exceeded %d records; re-sync from a checkpoint"
           t.cfg.repl_max_lag)
    else
      match
        Sync.with_server t.sync (fun server ->
            match Icdb_reldb.Db.journal (Icdb.Server.db server) with
            | None -> `Gone
            | Some j ->
                let base = Icdb_reldb.Journal.base_seq j in
                let next = Icdb_reldb.Journal.next_seq j in
                if fl.fl_cursor < base || fl.fl_cursor > next then `Stale
                else begin
                  let s =
                    Icdb_reldb.Journal.stream_from j ~seq:fl.fl_cursor
                      ~max_records:t.cfg.repl_batch ()
                  in
                  let records =
                    List.map Icdb_reldb.Journal.encode_line
                      s.Icdb_reldb.Journal.st_entries
                  in
                  let ws = Icdb.Server.workspace server in
                  let files =
                    List.concat_map Icdb.Server.replication_files
                      s.Icdb_reldb.Journal.st_entries
                    |> List.sort_uniq compare
                    |> List.filter_map (fun name ->
                           match read_file (Filename.concat ws name) with
                           | data -> Some (name, data)
                           | exception Sys_error _ -> None)
                  in
                  `Batch (records, files, next)
                end)
      with
      | exception e ->
          (* the journal_stream fault site or an I/O hiccup: the cursor
             has not moved, so just retry on the next poll *)
          Event.warn "repl: journal stream failed: %s" (Printexc.to_string e)
      | `Gone -> shed_follower fl "primary journal detached"
      | `Stale ->
          shed_follower fl
            "cursor left the journal window (a checkpoint truncated it); \
             reconnect for a fresh checkpoint"
      | `Batch (records, files, jnext) ->
          let n = List.length records in
          if n > 0 || now () -. fl.fl_last_sent >= 1.0 then begin
            let bytes =
              Wire.encode_response
                { id = fl.fl_rid;
                  body =
                    Wire.Journal_batch
                      { jb_first = fl.fl_cursor;
                        jb_next = jnext;
                        jb_records = records;
                        jb_files = files } }
            in
            Mutex.lock fl.fl_qlock;
            Queue.push (bytes, n) fl.fl_frames;
            fl.fl_queued <- fl.fl_queued + n;
            Condition.signal fl.fl_qcond;
            Mutex.unlock fl.fl_qlock;
            fl.fl_cursor <- fl.fl_cursor + n;
            fl.fl_last_sent <- now ();
            Metrics.incr c_batches_sent;
            if n > 0 then Metrics.incr ~by:n c_records_sent
          end
  end

let publisher_loop t =
  let rec loop () =
    if not (Atomic.get t.want_stop) then begin
      let fls =
        Mutex.lock t.rlock;
        let l = t.followers in
        Mutex.unlock t.rlock;
        l
      in
      List.iter (publish_one t) fls;
      (* a shed follower whose sender is wedged in a write gets its
         socket forced shut after a grace period, which unwedges the
         sender; closed connections drop out of the registry *)
      List.iter
        (fun fl ->
          if fl.fl_dead && fl.fl_conn.alive && now () -. fl.fl_dead_at > 5.0
          then
            try Unix.shutdown fl.fl_conn.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
        fls;
      Mutex.lock t.rlock;
      t.followers <- List.filter (fun fl -> fl.fl_conn.alive) t.followers;
      Metrics.set g_followers (float_of_int (List.length t.followers));
      Mutex.unlock t.rlock;
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

let handle_task t task =
  let conn = task.tconn and frame = task.tframe and ctx = task.tctx in
  let wait = now () -. task.enqueued_at in
  Metrics.observe t.h_queue_wait wait;
  let deadline_missed =
    ctx.Wire.timeout_s > 0.0 && wait > ctx.Wire.timeout_s
  in
  if wait > t.cfg.request_timeout_s || deadline_missed then begin
    Metrics.incr t.ctr.c_timeouts;
    let bound =
      if deadline_missed then ctx.Wire.timeout_s else t.cfg.request_timeout_s
    in
    send_error t conn frame.Wire.id Wire.Timeout
      (Printf.sprintf
         "request timed out after %.3f s in queue (deadline %.3f s)" wait
         bound)
  end
  else
    match frame.Wire.body with
    | Wire.Subscribe { cursor } ->
        (* replication handshake: sends its own frames (offer, chunks)
           and registers with the publisher, which pushes the batches —
           there is no single response to send here *)
        handle_subscribe t conn frame.Wire.id cursor
    | _ ->
    begin
    let t0 = now () in
    let info = { xi_tag = ""; xi_cache = "-"; xi_phases = [] } in
    let resp =
      try execute t conn frame ctx info
      with e ->
        Wire.Error
          { code = Wire.Internal;
            message = "internal error: " ^ Printexc.to_string e }
    in
    let elapsed = now () -. t0 in
    let cmd = metric_name frame in
    Metrics.observe (Metrics.histogram cmd) elapsed;
    if t.cfg.slow_threshold_s >= 0.0 && elapsed >= t.cfg.slow_threshold_s
    then record_slow t ~cmd ~info ~conn ~seconds:elapsed;
    (match resp with
     | Wire.Error _ -> Metrics.incr t.ctr.c_errors
     | _ -> ());
    send_resp conn frame.Wire.id resp
  end

(* Workers drain the queue completely before exiting, which is what
   makes shutdown graceful: every request that was accepted is answered. *)
let worker_loop t =
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not (Atomic.get t.want_stop) do
      Condition.wait t.qcond t.qlock
    done;
    let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.qlock;
    match task with
    | Some task ->
        handle_task t task;
        loop ()
    | None -> () (* stopping and drained *)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Reader side                                                         *)
(* ------------------------------------------------------------------ *)

let enqueue t conn frame ctx =
  Metrics.incr t.ctr.c_requests;
  if Atomic.get t.want_stop then
    send_error t conn frame.Wire.id Wire.Shutting_down "server is shutting down"
  else begin
    Mutex.lock t.qlock;
    let shed = Queue.length t.queue >= t.cfg.max_queue in
    if not shed then begin
      Queue.push
        { tconn = conn; tframe = frame; tctx = ctx; enqueued_at = now () }
        t.queue;
      Condition.signal t.qcond
    end;
    Mutex.unlock t.qlock;
    if shed then begin
      Metrics.incr t.ctr.c_shed;
      send_error t conn frame.Wire.id Wire.Overloaded
        (Printf.sprintf "request shed: queue full (%d deep)" t.cfg.max_queue)
    end
  end

let reader_loop t conn =
  let rec loop () =
    if conn.alive && not (Atomic.get t.want_stop) then begin
      match Unix.select [ conn.fd ] [] [] 1.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | [], _, _ ->
          (* followers legitimately never send another frame after the
             subscribe: the traffic is all primary→follower pushes *)
          if (not conn.follower)
             && now () -. conn.last_active > t.cfg.idle_timeout_s
          then begin
            Metrics.incr t.ctr.c_idle_reaped;
            Event.info ~fields:[ ("conn", string_of_int conn.cid) ]
              "net: reaping idle connection %s" conn.peer;
            send_resp conn 0 Wire.Bye
          end
          else loop ()
      | _ -> (
          match Wire.read_request conn.fd with
          | Ok (frame, ctx) ->
              conn.last_active <- now ();
              enqueue t conn frame ctx;
              loop ()
          | Error Wire.Closed -> ()
          | Error (Wire.Truncated _ as e) ->
              Metrics.incr t.ctr.c_malformed;
              send_error t conn 0 Wire.Protocol_error
                (Wire.decode_error_to_string e)
          | Error (Wire.Oversized _ as e) ->
              (* framing is lost: error out loud, then close *)
              Metrics.incr t.ctr.c_malformed;
              send_error t conn 0 Wire.Protocol_error
                (Wire.decode_error_to_string e)
          | Error (Wire.Bad_version { id; got }) ->
              (* the frame was fully consumed: the connection survives *)
              Metrics.incr t.ctr.c_version_mismatch;
              send_error t conn
                (Option.value id ~default:0)
                Wire.Version_mismatch
                (Printf.sprintf
                   "peer speaks protocol v%d, this server speaks v%d" got
                   Wire.protocol_version);
              conn.last_active <- now ();
              loop ()
          | Error (Wire.Malformed { id; reason }) ->
              Metrics.incr t.ctr.c_malformed;
              send_error t conn
                (Option.value id ~default:0)
                Wire.Protocol_error ("malformed frame: " ^ reason);
              conn.last_active <- now ();
              loop ()
          | exception Unix.Unix_error _ -> ())
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)
(* ------------------------------------------------------------------ *)

let admit t fd peer_addr =
  let peer =
    match peer_addr with
    | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    | Unix.ADDR_UNIX p -> p
  in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  Mutex.lock t.clock;
  let live = Hashtbl.length t.conns in
  let admitted = live < t.cfg.max_connections in
  let conn =
    if not admitted then None
    else begin
      t.next_cid <- t.next_cid + 1;
      let conn =
        { cid = t.next_cid;
          fd;
          peer;
          wlock = Mutex.create ();
          alive = true;
          last_active = now ();
          rthread = None;
          follower = false }
      in
      Hashtbl.replace t.conns conn.cid conn;
      Some conn
    end
  in
  Mutex.unlock t.clock;
  match conn with
  | None ->
      Metrics.incr t.ctr.c_refused;
      Event.warn "net: refusing %s: %d/%d connections in use" peer live
        t.cfg.max_connections;
      (try
         Wire.write_frame fd
           (Wire.encode_response
              { id = 0;
                body =
                  Wire.Error
                    { code = Wire.Overloaded;
                      message =
                        Printf.sprintf "connection limit reached (%d)"
                          t.cfg.max_connections } })
       with Unix.Unix_error _ | Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | Some conn ->
      Metrics.incr t.ctr.c_accepted;
      Event.debug ~fields:[ ("conn", string_of_int conn.cid) ]
        "net: accepted %s" peer;
      let thread =
        Thread.create
          (fun () ->
            Fun.protect
              ~finally:(fun () -> kill_conn t conn)
              (fun () -> reader_loop t conn))
          ()
      in
      conn.rthread <- Some thread

let teardown t =
  (* no new connections *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* wake idle workers so they can observe the stop flag and drain *)
  Mutex.lock t.qlock;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qlock;
  List.iter Thread.join t.worker_threads;
  (* retire the replication plane: stop the publisher, then wake every
     sender with the socket forced shut so a blocked send cannot wedge
     the join *)
  (match t.publisher with Some th -> Thread.join th | None -> ());
  let fls =
    Mutex.lock t.rlock;
    let l = t.followers in
    t.followers <- [];
    Mutex.unlock t.rlock;
    l
  in
  List.iter
    (fun fl ->
      fl.fl_dead <- true;
      fl.fl_reason <- "primary shutting down";
      fl.fl_dead_at <- now ();
      (try Unix.shutdown fl.fl_conn.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      Mutex.lock fl.fl_qlock;
      Condition.broadcast fl.fl_qcond;
      Mutex.unlock fl.fl_qlock)
    fls;
  List.iter
    (fun fl ->
      match fl.fl_sender with Some th -> Thread.join th | None -> ())
    fls;
  (* every accepted request is now answered; say goodbye and unblock
     any reader parked in select/read by shutting the receive side *)
  let conns =
    Mutex.lock t.clock;
    let l = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    Mutex.unlock t.clock;
    l
  in
  List.iter
    (fun conn ->
      send_resp conn 0 Wire.Bye;
      try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter
    (fun conn -> match conn.rthread with Some th -> Thread.join th | None -> ())
    conns;
  Event.info "net: service stopped"

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.want_stop) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ -> (
           match Unix.accept ~cloexec:true t.listen_fd with
           | exception
               Unix.Unix_error
                 ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                  | Unix.ECONNABORTED), _, _) ->
               ()
           | fd, peer -> admit t fd peer));
      loop ()
    end
  in
  loop ();
  teardown t

let counters () =
  { c_accepted = Metrics.counter "net.accepted";
    c_refused = Metrics.counter "net.refused";
    c_closed = Metrics.counter "net.closed";
    c_requests = Metrics.counter "net.requests";
    c_errors = Metrics.counter "net.errors";
    c_shed = Metrics.counter "net.shed";
    c_timeouts = Metrics.counter "net.timeouts";
    c_malformed = Metrics.counter "net.malformed";
    c_version_mismatch = Metrics.counter "net.version_mismatch";
    c_idle_reaped = Metrics.counter "net.idle_reaped" }

let start ?(config = default_config) sync =
  (* a dead peer must surface as EPIPE on the write, not kill the
     process; set here (not only in the CLI) so library embedders and
     the replication senders are covered *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    { cfg = config;
      sync;
      listen_fd;
      bound_port;
      want_stop = Atomic.make false;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      conns = Hashtbl.create 64;
      clock = Mutex.create ();
      next_cid = 0;
      worker_threads = [];
      accept_thread = None;
      rlock = Mutex.create ();
      followers = [];
      publisher = None;
      ctr = counters ();
      h_queue_wait = Metrics.histogram "net.queue_wait";
      slock = Mutex.create ();
      slow = [];
      last_slow_warn = 0.0 }
  in
  t.worker_threads <-
    List.init (max 1 config.workers) (fun _ -> Thread.create worker_loop t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  (* a follower never publishes; only primaries run the poll loop *)
  if not config.read_only then
    t.publisher <- Some (Thread.create publisher_loop t);
  Event.info "net: icdbd listening on %s:%d (%d workers, %d connections max)"
    config.host bound_port (max 1 config.workers) config.max_connections;
  t

let port t = t.bound_port
let config t = t.cfg
let stopping t = Atomic.get t.want_stop

let queue_depth t =
  Mutex.lock t.qlock;
  let n = Queue.length t.queue in
  Mutex.unlock t.qlock;
  n

let slow_log t =
  Mutex.lock t.slock;
  let l = t.slow in
  Mutex.unlock t.slock;
  l

let follower_count t =
  Mutex.lock t.rlock;
  let n = List.length t.followers in
  Mutex.unlock t.rlock;
  n

let request_shutdown t = Atomic.set t.want_stop true

let wait t =
  match t.accept_thread with Some th -> Thread.join th | None -> ()

let shutdown t =
  request_shutdown t;
  wait t
