(* The icdbd wire protocol codec.

   Layout (everything big-endian):

     u32  payload length
     u8   protocol version
     u8   frame kind
     i64  request id
     ...  body

   The codec is deliberately total in both directions: every value the
   CQL layer can return has exactly one encoding, and every byte string
   decodes to either a frame or a classified [decode_error] that tells
   the caller whether the stream is still framable. Malformed bodies
   inside a well-delimited payload never lose stream sync, so the
   server can answer them with a structured error frame and keep the
   connection. *)

(* Per-request context, carried by every v2 request immediately after
   the id: a client-generated trace id (empty = none) and a deadline in
   seconds (0 = none). Putting it in a fixed position rather than per
   kind means a future request kind inherits propagation for free. *)
type ctx = { trace_id : string; timeout_s : float }

let no_ctx = { trace_id = ""; timeout_s = 0.0 }

(* One element of a v4 [Batch] request: the two query shapes a client
   can vectorize. Each entry succeeds or fails on its own. *)
type batch_entry =
  | Bcql of { text : string; args : Icdb_cql.Exec.arg list }
  | Bsql of string

type req =
  | Ping
  | Cql of { text : string; args : Icdb_cql.Exec.arg list }
  | Sql of string
  | Stats
  | Trace_fetch of string
  | Shutdown
  | Subscribe of { cursor : int }
  | Batch of batch_entry list

type sql_result =
  | Affected of int
  | Relation of { cols : string list; rows : string list list }

(* A completed server-side span, flattened for the wire. [rs_parent]
   refers to another span's [rs_id] within the same reply. *)
type remote_span = {
  rs_id : int;
  rs_parent : int option;
  rs_name : string;
  rs_tag : string;
  rs_start_ns : int;
  rs_dur_ns : int;
  rs_attrs : (string * string) list;
}

type hist_summary = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

type slow_entry = {
  sl_cmd : string;
  sl_trace : string;
  sl_conn : int;
  sl_seconds : float;
  sl_cache : string;
  sl_phases : (string * float) list;
  sl_plan : string;  (* v5: query-plan summary, "" when none / pre-v5 *)
}

(* The full metrics registry plus the slow-query log: everything the
   server knows about itself, so `icdb stats --connect` renders the
   same detail a local `icdb stats` would. [sp_text] keeps the
   pre-rendered cache summary for humans. *)
type stats_payload = {
  sp_text : string;
  sp_counters : (string * int) list;
  sp_gauges : (string * float) list;
  sp_hists : hist_summary list;
  sp_slow : slow_entry list;
}

type error_code =
  | Parse_error
  | Exec_error
  | Sql_error
  | Protocol_error
  | Version_mismatch
  | Overloaded
  | Timeout
  | Shutting_down
  | Internal
  | Read_only

(* The per-entry outcome inside a v4 [Batch_reply]: one [batch_result]
   per [batch_entry], in request order, errors isolated to their
   entry. *)
type batch_result =
  | Bresults of (string * Icdb_cql.Exec.result) list
  | Bsql_result of sql_result
  | Berror of { code : error_code; message : string }

and resp =
  | Pong
  | Results of (string * Icdb_cql.Exec.result) list
  | Sql_result of sql_result
  | Stats_report of stats_payload
  | Spans of remote_span list
  | Error of { code : error_code; message : string }
  | Bye
  (* v3 replication stream frames. After a [Subscribe] the connection
     becomes a push stream: the publisher sends [Journal_batch] frames
     as the journal grows (empty batches double as heartbeats carrying
     the primary's cursor), or a [Checkpoint_offer] followed by
     [Checkpoint_chunk]s when the follower's cursor predates the
     primary's last truncation. [Repl_error] is terminal for the
     subscription (the follower reconnects). *)
  | Journal_batch of {
      jb_first : int;                  (* seq of the first record *)
      jb_next : int;                   (* primary's next_seq at send time *)
      jb_records : string list;        (* exact journal line encodings *)
      jb_files : (string * string) list;  (* basename -> contents *)
    }
  | Checkpoint_offer of { co_cursor : int; co_files : int }
  | Checkpoint_chunk of { cc_name : string; cc_data : string; cc_last : bool }
  | Repl_error of string
  | Batch_reply of batch_result list  (* v4: vectorized Batch answer *)

type 'a frame = { id : int; body : 'a }

(* v2: requests carry a trace context (trace id + deadline) after the
   id, [Trace_fetch]/[Spans] exist, and [Stats_report] is structured.
   v3: the replication frames ([Subscribe], [Journal_batch],
   [Checkpoint_offer]/[Checkpoint_chunk], [Repl_error]) and the
   [Read_only] error code.
   v4: the pipelining protocol — [Batch]/[Batch_reply] vectorized
   frames, and the (always latent, now contractual) permission for a
   server to answer single requests out of order, matched by id. v4 is
   a strict byte-level superset of v3: it adds two frame kinds and
   reshapes nothing, so every pre-existing kind still encodes exactly
   as a v3 binary would.

   Version stamping is therefore per kind ([version_of_kind]): the two
   v4-only kinds carry 4, everything else stays stamped 3. This is
   what keeps rolling upgrades honest in both directions — a real v3
   binary's decoder accepts exactly its own version, so an upgraded
   server answering a v3 client (or pushing replication frames to a
   v3 follower) must keep emitting 3 on the kinds that v3 defined.
   The v4 stamp travels only on frames a v3 peer could not interpret
   anyway, where it classifies as the recoverable [Bad_version] and
   earns a structured version-mismatch error on a surviving
   connection.
   v5: [Stats_report] slow-log entries grow a trailing query-plan
   summary string ([sl_plan]). Unlike v4 this reshapes an existing
   kind, so [Stats_report] itself is stamped 5 — an old peer fed the
   longer payload classifies it as the recoverable [Bad_version]
   instead of misparsing, while our decoder reads the plan field only
   from frames stamped >= 5 and defaults it to "" on v3/v4 frames, so
   an old server's reports still decode. Batch kinds keep their
   (now historical) v4 stamp. Our own decoder accepts the whole
   [min_protocol_version .. protocol_version] range; frames older
   than v3 decode to the recoverable [Bad_version]. *)
let protocol_version = 5
let min_protocol_version = 3
let max_payload = 16 * 1024 * 1024

(* Header bytes inside the payload before the body starts. *)
let header_bytes = 1 + 1 + 8

let error_code_to_string = function
  | Parse_error -> "parse_error"
  | Exec_error -> "exec_error"
  | Sql_error -> "sql_error"
  | Protocol_error -> "protocol_error"
  | Version_mismatch -> "version_mismatch"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"
  | Read_only -> "read_only"

(* ------------------------------------------------------------------ *)
(* Frame kinds                                                         *)
(* ------------------------------------------------------------------ *)

let kind_ping = 0x01
let kind_cql = 0x02
let kind_sql = 0x03
let kind_stats = 0x04
let kind_shutdown = 0x05
let kind_trace_fetch = 0x06
let kind_subscribe = 0x07
let kind_batch = 0x08

let kind_pong = 0x41
let kind_results = 0x42
let kind_sql_affected = 0x43
let kind_sql_relation = 0x44
let kind_stats_report = 0x45
let kind_error = 0x46
let kind_bye = 0x47
let kind_spans = 0x48
let kind_journal_batch = 0x49
let kind_ckpt_offer = 0x4a
let kind_ckpt_chunk = 0x4b
let kind_repl_error = 0x4c
let kind_batch_reply = 0x4d

(* The version byte a frame of [kind] is stamped with: the version
   that last changed the kind's payload (or introduced it) — see the
   version-history comment above [protocol_version]. *)
let version_of_kind kind =
  if kind = kind_stats_report then 5
  else if kind = kind_batch || kind = kind_batch_reply then 4
  else min_protocol_version

let code_to_byte = function
  | Parse_error -> 0
  | Exec_error -> 1
  | Sql_error -> 2
  | Protocol_error -> 3
  | Version_mismatch -> 4
  | Overloaded -> 5
  | Timeout -> 6
  | Shutting_down -> 7
  | Internal -> 8
  | Read_only -> 9

let code_of_byte = function
  | 0 -> Some Parse_error
  | 1 -> Some Exec_error
  | 2 -> Some Sql_error
  | 3 -> Some Protocol_error
  | 4 -> Some Version_mismatch
  | 5 -> Some Overloaded
  | 6 -> Some Timeout
  | 7 -> Some Shutting_down
  | 8 -> Some Internal
  | 9 -> Some Read_only
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let put_u8 buf v = Buffer.add_uint8 buf (v land 0xff)

let put_u32 buf v =
  (* the decoder reads this back as a signed i32 and rejects negatives,
     so values past 2^31-1 would silently truncate into frames the
     peer must refuse — fail loudly at the encoder instead (found by
     the wire fuzzer: Checkpoint_offer.co_files is caller-supplied) *)
  if v < 0 || v > 0x7fffffff then invalid_arg "Wire.put_u32: out of range";
  Buffer.add_int32_be buf (Int32.of_int v)

let put_i64 buf v = Buffer.add_int64_be buf (Int64.of_int v)
let put_float buf v = Buffer.add_int64_be buf (Int64.bits_of_float v)

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_list buf put l =
  put_u32 buf (List.length l);
  List.iter (put buf) l

let put_arg buf (a : Icdb_cql.Exec.arg) =
  match a with
  | Icdb_cql.Exec.Astr s ->
      put_u8 buf 0;
      put_string buf s
  | Icdb_cql.Exec.Aint i ->
      put_u8 buf 1;
      put_i64 buf i
  | Icdb_cql.Exec.Afloat f ->
      put_u8 buf 2;
      put_float buf f
  | Icdb_cql.Exec.Astrs l ->
      put_u8 buf 3;
      put_list buf put_string l

let put_result buf (key, (r : Icdb_cql.Exec.result)) =
  put_string buf key;
  match r with
  | Icdb_cql.Exec.Rstr s ->
      put_u8 buf 0;
      put_string buf s
  | Icdb_cql.Exec.Rint i ->
      put_u8 buf 1;
      put_i64 buf i
  | Icdb_cql.Exec.Rfloat f ->
      put_u8 buf 2;
      put_float buf f
  | Icdb_cql.Exec.Rstrs l ->
      put_u8 buf 3;
      put_list buf put_string l

let put_opt buf put = function
  | None -> put_u8 buf 0
  | Some v ->
      put_u8 buf 1;
      put buf v

let put_remote_span buf s =
  put_i64 buf s.rs_id;
  put_opt buf put_i64 s.rs_parent;
  put_string buf s.rs_name;
  put_string buf s.rs_tag;
  put_i64 buf s.rs_start_ns;
  put_i64 buf s.rs_dur_ns;
  put_list buf
    (fun b (k, v) ->
      put_string b k;
      put_string b v)
    s.rs_attrs

let put_hist_summary buf h =
  put_string buf h.hs_name;
  put_i64 buf h.hs_count;
  put_float buf h.hs_sum;
  put_float buf h.hs_min;
  put_float buf h.hs_max;
  put_float buf h.hs_p50;
  put_float buf h.hs_p90;
  put_float buf h.hs_p99

let put_slow_entry buf e =
  put_string buf e.sl_cmd;
  put_string buf e.sl_trace;
  put_i64 buf e.sl_conn;
  put_float buf e.sl_seconds;
  put_string buf e.sl_cache;
  put_list buf
    (fun b (k, v) ->
      put_string b k;
      put_float b v)
    e.sl_phases;
  put_string buf e.sl_plan

let put_stats_payload buf p =
  put_string buf p.sp_text;
  put_list buf
    (fun b (k, v) ->
      put_string b k;
      put_i64 b v)
    p.sp_counters;
  put_list buf
    (fun b (k, v) ->
      put_string b k;
      put_float b v)
    p.sp_gauges;
  put_list buf put_hist_summary p.sp_hists;
  put_list buf put_slow_entry p.sp_slow

let put_batch_entry buf = function
  | Bcql { text; args } ->
      put_u8 buf 0;
      put_string buf text;
      put_list buf put_arg args
  | Bsql stmt ->
      put_u8 buf 1;
      put_string buf stmt

let put_batch_result buf = function
  | Bresults rs ->
      put_u8 buf 0;
      put_list buf put_result rs
  | Bsql_result (Affected n) ->
      put_u8 buf 1;
      put_i64 buf n
  | Bsql_result (Relation { cols; rows }) ->
      put_u8 buf 2;
      put_list buf put_string cols;
      put_list buf (fun b row -> put_list b put_string row) rows
  | Berror { code; message } ->
      put_u8 buf 3;
      put_u8 buf (code_to_byte code);
      put_string buf message

let frame_bytes kind id body_writer =
  let payload = Buffer.create 64 in
  put_u8 payload (version_of_kind kind);
  put_u8 payload kind;
  put_i64 payload id;
  body_writer payload;
  let n = Buffer.length payload in
  if n > max_payload then invalid_arg "Wire: frame exceeds max_payload";
  let out = Buffer.create (n + 4) in
  put_u32 out n;
  Buffer.add_buffer out payload;
  Buffer.contents out

let encode_request ?(ctx = no_ctx) { id; body } =
  let with_ctx body_writer buf =
    put_string buf ctx.trace_id;
    put_float buf ctx.timeout_s;
    body_writer buf
  in
  match body with
  | Ping -> frame_bytes kind_ping id (with_ctx (fun _ -> ()))
  | Cql { text; args } ->
      frame_bytes kind_cql id
        (with_ctx (fun buf ->
             put_string buf text;
             put_list buf put_arg args))
  | Sql stmt ->
      frame_bytes kind_sql id (with_ctx (fun buf -> put_string buf stmt))
  | Stats -> frame_bytes kind_stats id (with_ctx (fun _ -> ()))
  | Trace_fetch tag ->
      frame_bytes kind_trace_fetch id
        (with_ctx (fun buf -> put_string buf tag))
  | Shutdown -> frame_bytes kind_shutdown id (with_ctx (fun _ -> ()))
  | Subscribe { cursor } ->
      frame_bytes kind_subscribe id
        (with_ctx (fun buf -> put_i64 buf cursor))
  | Batch entries ->
      frame_bytes kind_batch id
        (with_ctx (fun buf -> put_list buf put_batch_entry entries))

let encode_response { id; body } =
  match body with
  | Pong -> frame_bytes kind_pong id (fun _ -> ())
  | Results rs ->
      frame_bytes kind_results id (fun buf -> put_list buf put_result rs)
  | Sql_result (Affected n) ->
      frame_bytes kind_sql_affected id (fun buf -> put_i64 buf n)
  | Sql_result (Relation { cols; rows }) ->
      frame_bytes kind_sql_relation id (fun buf ->
          put_list buf put_string cols;
          put_list buf (fun b row -> put_list b put_string row) rows)
  | Stats_report payload ->
      frame_bytes kind_stats_report id (fun buf -> put_stats_payload buf payload)
  | Spans spans ->
      frame_bytes kind_spans id (fun buf -> put_list buf put_remote_span spans)
  | Error { code; message } ->
      frame_bytes kind_error id (fun buf ->
          put_u8 buf (code_to_byte code);
          put_string buf message)
  | Bye -> frame_bytes kind_bye id (fun _ -> ())
  | Journal_batch { jb_first; jb_next; jb_records; jb_files } ->
      frame_bytes kind_journal_batch id (fun buf ->
          put_i64 buf jb_first;
          put_i64 buf jb_next;
          put_list buf put_string jb_records;
          put_list buf
            (fun b (name, data) ->
              put_string b name;
              put_string b data)
            jb_files)
  | Checkpoint_offer { co_cursor; co_files } ->
      frame_bytes kind_ckpt_offer id (fun buf ->
          put_i64 buf co_cursor;
          put_u32 buf co_files)
  | Checkpoint_chunk { cc_name; cc_data; cc_last } ->
      frame_bytes kind_ckpt_chunk id (fun buf ->
          put_string buf cc_name;
          put_string buf cc_data;
          put_u8 buf (if cc_last then 1 else 0))
  | Repl_error message ->
      frame_bytes kind_repl_error id (fun buf -> put_string buf message)
  | Batch_reply results ->
      frame_bytes kind_batch_reply id (fun buf ->
          put_list buf put_batch_result results)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type decode_error =
  | Closed
  | Truncated of string
  | Oversized of int
  | Bad_version of { id : int option; got : int }
  | Malformed of { id : int option; reason : string }

let decode_error_to_string = function
  | Closed -> "connection closed"
  | Truncated what -> Printf.sprintf "truncated frame (%s)" what
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n
  | Bad_version { got; _ } ->
      Printf.sprintf "protocol version mismatch (peer speaks v%d, this is v%d)"
        got protocol_version
  | Malformed { reason; _ } -> Printf.sprintf "malformed frame: %s" reason

exception Bad of string

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then raise (Bad "body ends early")

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.data c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Bad "negative length");
  v

let get_i64 c =
  need c 8;
  let v = String.get_int64_be c.data c.pos in
  c.pos <- c.pos + 8;
  Int64.to_int v

let get_float c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_be c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_list c get =
  let n = get_u32 c in
  (* an element costs at least one byte; reject counts the payload
     cannot possibly hold so hostile frames cannot force huge allocs *)
  if n > String.length c.data - c.pos then raise (Bad "list count too large");
  List.init n (fun _ -> get c)

let get_arg c : Icdb_cql.Exec.arg =
  match get_u8 c with
  | 0 -> Icdb_cql.Exec.Astr (get_string c)
  | 1 -> Icdb_cql.Exec.Aint (get_i64 c)
  | 2 -> Icdb_cql.Exec.Afloat (get_float c)
  | 3 -> Icdb_cql.Exec.Astrs (get_list c get_string)
  | t -> raise (Bad (Printf.sprintf "unknown argument tag %d" t))

let get_opt c get = match get_u8 c with
  | 0 -> None
  | 1 -> Some (get c)
  | t -> raise (Bad (Printf.sprintf "unknown option tag %d" t))

let get_pair c get_v =
  let k = get_string c in
  let v = get_v c in
  (k, v)

let get_remote_span c =
  let rs_id = get_i64 c in
  let rs_parent = get_opt c get_i64 in
  let rs_name = get_string c in
  let rs_tag = get_string c in
  let rs_start_ns = get_i64 c in
  let rs_dur_ns = get_i64 c in
  let rs_attrs = get_list c (fun c -> get_pair c get_string) in
  { rs_id; rs_parent; rs_name; rs_tag; rs_start_ns; rs_dur_ns; rs_attrs }

let get_hist_summary c =
  let hs_name = get_string c in
  let hs_count = get_i64 c in
  let hs_sum = get_float c in
  let hs_min = get_float c in
  let hs_max = get_float c in
  let hs_p50 = get_float c in
  let hs_p90 = get_float c in
  let hs_p99 = get_float c in
  { hs_name; hs_count; hs_sum; hs_min; hs_max; hs_p50; hs_p90; hs_p99 }

(* [version] is the frame's stamped version: the plan summary exists
   only from v5 on, so a v3/v4 peer's entries decode with an empty
   plan instead of tripping over a missing field. *)
let get_slow_entry ~version c =
  let sl_cmd = get_string c in
  let sl_trace = get_string c in
  let sl_conn = get_i64 c in
  let sl_seconds = get_float c in
  let sl_cache = get_string c in
  let sl_phases = get_list c (fun c -> get_pair c get_float) in
  let sl_plan = if version >= 5 then get_string c else "" in
  { sl_cmd; sl_trace; sl_conn; sl_seconds; sl_cache; sl_phases; sl_plan }

let get_stats_payload ~version c =
  let sp_text = get_string c in
  let sp_counters = get_list c (fun c -> get_pair c get_i64) in
  let sp_gauges = get_list c (fun c -> get_pair c get_float) in
  let sp_hists = get_list c get_hist_summary in
  let sp_slow = get_list c (get_slow_entry ~version) in
  { sp_text; sp_counters; sp_gauges; sp_hists; sp_slow }

let get_result c =
  let key = get_string c in
  let r : Icdb_cql.Exec.result =
    match get_u8 c with
    | 0 -> Icdb_cql.Exec.Rstr (get_string c)
    | 1 -> Icdb_cql.Exec.Rint (get_i64 c)
    | 2 -> Icdb_cql.Exec.Rfloat (get_float c)
    | 3 -> Icdb_cql.Exec.Rstrs (get_list c get_string)
    | t -> raise (Bad (Printf.sprintf "unknown result tag %d" t))
  in
  (key, r)

let get_batch_entry c =
  match get_u8 c with
  | 0 ->
      let text = get_string c in
      let args = get_list c get_arg in
      Bcql { text; args }
  | 1 -> Bsql (get_string c)
  | t -> raise (Bad (Printf.sprintf "unknown batch entry tag %d" t))

let get_batch_result c =
  match get_u8 c with
  | 0 -> Bresults (get_list c get_result)
  | 1 -> Bsql_result (Affected (get_i64 c))
  | 2 ->
      let cols = get_list c get_string in
      let rows = get_list c (fun c -> get_list c get_string) in
      Bsql_result (Relation { cols; rows })
  | 3 -> (
      let code_byte = get_u8 c in
      let message = get_string c in
      match code_of_byte code_byte with
      | Some code -> Berror { code; message }
      | None -> raise (Bad (Printf.sprintf "unknown error code %d" code_byte)))
  | t -> raise (Bad (Printf.sprintf "unknown batch result tag %d" t))

(* The request id sits at a fixed offset, so even a frame whose body is
   garbage usually yields the id to address the error response to. *)
let salvage_id payload =
  if String.length payload >= header_bytes then
    Some (Int64.to_int (String.get_int64_be payload 2))
  else None

let decode_payload ~decode_body payload =
  let id = salvage_id payload in
  if String.length payload < header_bytes then
    Stdlib.Error (Malformed { id = None; reason = "payload shorter than header" })
  else
    let c = { data = payload; pos = 0 } in
    let version = get_u8 c in
    if version < min_protocol_version || version > protocol_version then
      Stdlib.Error (Bad_version { id; got = version })
    else
      let kind = get_u8 c in
      let fid = get_i64 c in
      match decode_body c version kind with
      | body -> (
          match body with
          | Some b ->
              if c.pos <> String.length payload then
                Stdlib.Error (Malformed { id; reason = "trailing bytes after body" })
              else Stdlib.Ok { id = fid; body = b }
          | None ->
              Error
                (Malformed
                   { id; reason = Printf.sprintf "unknown frame kind 0x%02x" kind }))
      | exception Bad reason -> Stdlib.Error (Malformed { id; reason })

let decode_request payload =
  let decoded =
    decode_payload payload ~decode_body:(fun c _version kind ->
        let trace_id = get_string c in
        let timeout_s = get_float c in
        let ctx = { trace_id; timeout_s } in
        let body =
          if kind = kind_ping then Some Ping
          else if kind = kind_cql then begin
            let text = get_string c in
            let args = get_list c get_arg in
            Some (Cql { text; args })
          end
          else if kind = kind_sql then Some (Sql (get_string c))
          else if kind = kind_stats then Some Stats
          else if kind = kind_trace_fetch then Some (Trace_fetch (get_string c))
          else if kind = kind_shutdown then Some Shutdown
          else if kind = kind_subscribe then
            Some (Subscribe { cursor = get_i64 c })
          else if kind = kind_batch then
            Some (Batch (get_list c get_batch_entry))
          else None
        in
        Option.map (fun b -> (b, ctx)) body)
  in
  match decoded with
  | Stdlib.Ok { id; body = (body, ctx) } -> Stdlib.Ok ({ id; body }, ctx)
  | Stdlib.Error e -> Stdlib.Error e

let decode_response payload =
  decode_payload payload ~decode_body:(fun c version kind ->
      if kind = kind_pong then Some Pong
      else if kind = kind_results then Some (Results (get_list c get_result))
      else if kind = kind_sql_affected then
        Some (Sql_result (Affected (get_i64 c)))
      else if kind = kind_sql_relation then begin
        let cols = get_list c get_string in
        let rows = get_list c (fun c -> get_list c get_string) in
        Some (Sql_result (Relation { cols; rows }))
      end
      else if kind = kind_stats_report then
        Some (Stats_report (get_stats_payload ~version c))
      else if kind = kind_spans then Some (Spans (get_list c get_remote_span))
      else if kind = kind_error then begin
        let code_byte = get_u8 c in
        let message = get_string c in
        match code_of_byte code_byte with
        | Some code -> Some (Error { code; message })
        | None -> raise (Bad (Printf.sprintf "unknown error code %d" code_byte))
      end
      else if kind = kind_bye then Some Bye
      else if kind = kind_journal_batch then begin
        let jb_first = get_i64 c in
        let jb_next = get_i64 c in
        let jb_records = get_list c get_string in
        let jb_files = get_list c (fun c -> get_pair c get_string) in
        Some (Journal_batch { jb_first; jb_next; jb_records; jb_files })
      end
      else if kind = kind_ckpt_offer then begin
        let co_cursor = get_i64 c in
        let co_files = get_u32 c in
        Some (Checkpoint_offer { co_cursor; co_files })
      end
      else if kind = kind_ckpt_chunk then begin
        let cc_name = get_string c in
        let cc_data = get_string c in
        let cc_last =
          match get_u8 c with
          | 0 -> false
          | 1 -> true
          | t -> raise (Bad (Printf.sprintf "unknown chunk-last tag %d" t))
        in
        Some (Checkpoint_chunk { cc_name; cc_data; cc_last })
      end
      else if kind = kind_repl_error then Some (Repl_error (get_string c))
      else if kind = kind_batch_reply then
        Some (Batch_reply (get_list c get_batch_result))
      else None)

(* ------------------------------------------------------------------ *)
(* Incremental framing                                                 *)
(* ------------------------------------------------------------------ *)

(* The event loop reads whatever the kernel has — a frame can arrive
   split at any byte boundary, or many frames can arrive glued into one
   read. [Dechunk] reassembles the length-prefixed stream: feed it raw
   fragments, pull out complete payloads. All field-level decoding
   ([decode_request]/[decode_response]) happens only on complete
   payloads, so no [get_*] accessor ever sees a partial field — the
   partial-read problem is solved once, here, instead of at every field
   boundary. An oversized (or negative) declared length is detected
   from the 4 header bytes alone, before buffering the body, so a
   hostile client cannot make the server allocate [max_payload] first.

   Single-owner by design (the event loop thread); not thread-safe. *)
module Dechunk = struct
  type t = {
    mutable buf : Bytes.t;   (* ring-less scratch: valid bytes are
                                [start, start+len) *)
    mutable start : int;
    mutable len : int;
  }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0 }
  let buffered t = t.len

  let feed t src off n =
    if off < 0 || n < 0 || off + n > Bytes.length src then
      invalid_arg "Wire.Dechunk.feed";
    if n > 0 then begin
      (if t.start + t.len + n > Bytes.length t.buf then begin
         (* slide to offset 0; grow if the pending bytes still don't fit *)
         if t.len > 0 then Bytes.blit t.buf t.start t.buf 0 t.len;
         t.start <- 0;
         if t.len + n > Bytes.length t.buf then begin
           let cap = ref (Bytes.length t.buf) in
           while !cap < t.len + n do cap := !cap * 2 done;
           let grown = Bytes.create !cap in
           Bytes.blit t.buf 0 grown 0 t.len;
           t.buf <- grown
         end
       end);
      Bytes.blit src off t.buf (t.start + t.len) n;
      t.len <- t.len + n
    end

  let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

  let next t =
    if t.len < 4 then `Await
    else begin
      let declared = Int32.to_int (Bytes.get_int32_be t.buf t.start) in
      if declared < 0 || declared > max_payload then `Oversized declared
      else if t.len < 4 + declared then `Await
      else begin
        let payload = Bytes.sub_string t.buf (t.start + 4) declared in
        t.start <- t.start + 4 + declared;
        t.len <- t.len - 4 - declared;
        if t.len = 0 then t.start <- 0;
        `Payload payload
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Blocking transport                                                  *)
(* ------------------------------------------------------------------ *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let write_frame fd s = write_all fd s 0 (String.length s)

(* [`Eof n] = clean EOF after [n] of the wanted bytes. *)
let read_exact fd want =
  let buf = Bytes.create want in
  let rec go off =
    if off = want then `Bytes (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (want - off) with
      | 0 -> `Eof off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_payload fd =
  match read_exact fd 4 with
  | `Eof 0 -> Stdlib.Error Closed
  | `Eof _ -> Stdlib.Error (Truncated "length header")
  | `Bytes hdr -> (
      let len = Int32.to_int (String.get_int32_be hdr 0) in
      if len < 0 || len > max_payload then Stdlib.Error (Oversized len)
      else
        match read_exact fd len with
        | `Eof _ -> Stdlib.Error (Truncated "payload")
        | `Bytes payload -> Stdlib.Ok payload)

let read_request fd =
  match read_payload fd with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok payload -> decode_request payload

let read_response fd =
  match read_payload fd with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok payload -> decode_response payload
