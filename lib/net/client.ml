(* Blocking call/response client over the icdbd wire protocol. *)

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  mutable open_ : bool;
}

exception Net_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Net_error s)) fmt

let connect ?(host = "127.0.0.1") ~port () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> fail "cannot resolve %s" host
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> fail "cannot resolve %s" host)
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot connect to %s:%d: %s" host port (Unix.error_message e));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { fd; next_id = 0; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let call t body =
  if not t.open_ then fail "connection is closed";
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  (try Wire.write_frame t.fd (Wire.encode_request { Wire.id; body })
   with Unix.Unix_error (e, _, _) ->
     close t;
     fail "send failed: %s" (Unix.error_message e));
  (* skip unsolicited frames (a [Bye] raced with our request; an
     id-0 notice) until our id answers, treating a server-initiated
     close as the error it is for a caller awaiting a reply *)
  let rec await () =
    match Wire.read_response t.fd with
    | Ok { Wire.id = rid; body } when rid = id -> body
    | Ok { Wire.body = Wire.Bye; _ } ->
        close t;
        fail "server closed the connection"
    | Ok _ -> await ()
    | Error e ->
        close t;
        fail "receive failed: %s" (Wire.decode_error_to_string e)
    | exception Unix.Unix_error (e, _, _) ->
        close t;
        fail "receive failed: %s" (Unix.error_message e)
  in
  await ()

let exec t ?(args = []) text =
  match call t (Wire.Cql { text; args }) with
  | Wire.Results rs -> Ok rs
  | Wire.Error { code; message } -> Error (code, message)
  | _ -> fail "unexpected response to a CQL request"

let sql t stmt =
  match call t (Wire.Sql stmt) with
  | Wire.Sql_result r -> Ok r
  | Wire.Error { code; message } -> Error (code, message)
  | _ -> fail "unexpected response to a SQL request"

let stats t =
  match call t Wire.Stats with
  | Wire.Stats_report text -> Ok text
  | Wire.Error { code; message } -> Error (code, message)
  | _ -> fail "unexpected response to a stats request"

let ping t =
  match call t Wire.Ping with
  | Wire.Pong -> ()
  | _ -> fail "unexpected response to a ping"

let shutdown_server t =
  match call t Wire.Shutdown with
  | Wire.Bye -> close t
  | Wire.Error { message; _ } -> fail "shutdown refused: %s" message
  | _ -> fail "unexpected response to a shutdown request"
