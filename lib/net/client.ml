(* Blocking client over the icdbd wire protocol, with pipelining:
   [call_async] issues without reading, [await] collects by id and
   stashes whatever other replies arrive first. *)

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  mutable open_ : bool;
  (* replies that arrived while awaiting a different id, keyed by id *)
  pending : (int, Wire.resp) Hashtbl.t;
  (* ids issued by [call_async] and not yet redeemed by [await] *)
  outstanding : (int, unit) Hashtbl.t;
}

type ticket = int

exception Net_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Net_error s)) fmt

(* The failures worth retrying: the server is starting up, restarting,
   or the network hiccuped. Anything else (unreachable address family,
   permission, resolution) fails fast. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT | Unix.EHOSTUNREACH
  | Unix.ENETUNREACH | Unix.EAGAIN ->
      true
  | _ -> false

let connect ?(host = "127.0.0.1") ~port ?(retries = 0) ?(backoff_s = 0.1) () =
  (* writing to a peer that died must surface as EPIPE, not a signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> fail "cannot resolve %s" host
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> fail "cannot resolve %s" host)
  in
  let rec attempt tries_left delay =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        { fd;
          next_id = 0;
          open_ = true;
          pending = Hashtbl.create 16;
          outstanding = Hashtbl.create 16 }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if tries_left > 0 && transient e then begin
          (* capped exponential backoff with jitter, so a fleet of
             reconnecting clients does not thunder in lockstep *)
          Unix.sleepf (delay +. Random.float (0.25 *. delay));
          attempt (tries_left - 1) (Float.min 5.0 (2.0 *. delay))
        end
        else
          fail "cannot connect to %s:%d: %s" host port (Unix.error_message e)
  in
  attempt (max 0 retries) (Float.max 0.001 backoff_s)

let fd t = t.fd

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Send without reading: the ticket is the request id the reply will
   echo. Many tickets may be outstanding at once — the server answers
   in completion order and [await] matches them back up. *)
let call_async ?ctx t body =
  if not t.open_ then fail "connection is closed";
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  (try Wire.write_frame t.fd (Wire.encode_request ?ctx { Wire.id; body })
   with Unix.Unix_error (e, _, _) ->
     close t;
     fail "send failed: %s" (Unix.error_message e));
  Hashtbl.replace t.outstanding id ();
  id

(* Collect the reply for [ticket], in any arrival order: replies to
   other outstanding tickets are stashed for their own [await]; id-0
   notices are skipped; a [Bye] for anyone else means the server is
   closing the connection, which is an error for a caller still owed a
   reply. *)
let await t ticket =
  match Hashtbl.find_opt t.pending ticket with
  | Some body ->
      Hashtbl.remove t.pending ticket;
      Hashtbl.remove t.outstanding ticket;
      body
  | None ->
      if not (Hashtbl.mem t.outstanding ticket) then
        fail "await: ticket %d is not outstanding (already redeemed?)" ticket;
      if not t.open_ then fail "connection is closed";
      let rec loop () =
        match Wire.read_response t.fd with
        | Ok { Wire.id = rid; body } when rid = ticket ->
            Hashtbl.remove t.outstanding ticket;
            body
        | Ok { Wire.body = Wire.Bye; _ } ->
            close t;
            fail "server closed the connection"
        | Ok { Wire.id = 0; _ } -> loop ()
        | Ok { Wire.id = rid; body } ->
            Hashtbl.replace t.pending rid body;
            loop ()
        | Error e ->
            close t;
            fail "receive failed: %s" (Wire.decode_error_to_string e)
        | exception Unix.Unix_error (e, _, _) ->
            close t;
            fail "receive failed: %s" (Unix.error_message e)
      in
      loop ()

let call ?ctx t body = await t (call_async ?ctx t body)

let ctx_of ?trace_id ?timeout_s () =
  match (trace_id, timeout_s) with
  | None, None -> None
  | _ ->
      Some
        { Wire.trace_id = Option.value trace_id ~default:"";
          timeout_s = Option.value timeout_s ~default:0.0 }

let exec t ?trace_id ?timeout_s ?(args = []) text =
  let ctx = ctx_of ?trace_id ?timeout_s () in
  match call ?ctx t (Wire.Cql { text; args }) with
  | Wire.Results rs -> Ok rs
  | Wire.Error { code; message } -> Error (code, message)
  | _ -> fail "unexpected response to a CQL request"

let sql t ?trace_id stmt =
  match call ?ctx:(ctx_of ?trace_id ()) t (Wire.Sql stmt) with
  | Wire.Sql_result r -> Ok r
  | Wire.Error { code; message } -> Error (code, message)
  | _ -> fail "unexpected response to a SQL request"

let batch t ?trace_id ?timeout_s entries =
  match
    call ?ctx:(ctx_of ?trace_id ?timeout_s ()) t (Wire.Batch entries)
  with
  | Wire.Batch_reply results ->
      let sent = List.length entries and got = List.length results in
      if sent <> got then
        fail "batch reply arity mismatch: %d entries, %d results" sent got;
      Ok results
  | Wire.Error { code; message } -> Error (code, message)
  | _ -> fail "unexpected response to a batch request"

let stats t =
  match call t Wire.Stats with
  | Wire.Stats_report payload -> Ok payload
  | Wire.Error { code; message } -> Error (code, message)
  | _ -> fail "unexpected response to a stats request"

let fetch_trace t trace_id =
  match call t (Wire.Trace_fetch trace_id) with
  | Wire.Spans spans -> Ok spans
  | Wire.Error { code; message } -> Error (code, message)
  | _ -> fail "unexpected response to a trace-fetch request"

let ping t =
  match call t Wire.Ping with
  | Wire.Pong -> ()
  | _ -> fail "unexpected response to a ping"

let shutdown_server t =
  match call t Wire.Shutdown with
  | Wire.Bye -> close t
  | Wire.Error { message; _ } -> fail "shutdown refused: %s" message
  | _ -> fail "unexpected response to a shutdown request"

(* Merge client-side spans with the server-side spans fetched for the
   same trace id into one list suitable for Chrome export. The two
   processes have unrelated monotonic clock bases, so absolute remote
   timestamps are meaningless here: we shift the whole server group so
   it is centered inside the client-side window, which puts the server
   work visually within the client request that caused it while
   preserving every intra-server duration and gap exactly. Client spans
   are re-tagged "client" and server spans "server" so the export lays
   them out as two named rows; server span ids move to a disjoint range
   so parent links cannot collide with client ids. *)
let merge_remote_spans ~(local : Icdb_obs.Trace.span list)
    ~(remote : Wire.remote_span list) : Icdb_obs.Trace.span list =
  let open Icdb_obs.Trace in
  let locals = List.map (fun s -> { s with stag = Some "client" }) local in
  match remote with
  | [] -> locals
  | _ ->
      let rmin =
        List.fold_left
          (fun a (r : Wire.remote_span) -> min a r.Wire.rs_start_ns)
          max_int remote
      in
      let rmax =
        List.fold_left
          (fun a (r : Wire.remote_span) ->
            max a (r.Wire.rs_start_ns + max 0 r.Wire.rs_dur_ns))
          min_int remote
      in
      let offset =
        match locals with
        | [] -> -rmin
        | _ ->
            let lmin =
              List.fold_left (fun a s -> min a s.sstart_ns) max_int locals
            in
            let lmax =
              List.fold_left
                (fun a s -> max a (s.sstart_ns + max 0 s.sdur_ns))
                min_int locals
            in
            ((lmin + lmax) / 2) - ((rmin + rmax) / 2)
      in
      let id_base = 1_000_000 in
      locals
      @ List.map
          (fun (r : Wire.remote_span) ->
            { sid = r.Wire.rs_id + id_base;
              sparent = Option.map (fun p -> p + id_base) r.Wire.rs_parent;
              sname = r.Wire.rs_name;
              stag = Some "server";
              sattrs = r.Wire.rs_attrs;
              sstart_ns = r.Wire.rs_start_ns + offset;
              sdur_ns = r.Wire.rs_dur_ns })
          remote
