(** Relational-algebra combinators over {!Table}.

    Results are transient relations: a schema plus materialized rows.
    These are the primitives the SQL layer ({!Sql}) and the ICDB server
    compile their requests into. *)

type rel = {
  rname : string;    (** source table name, kept for error messages *)
  rschema : Table.schema;
  rrows : Table.row list;
}

type pred =
  | True
  | Eq of string * Value.t
  | Neq of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | Like of string * string  (** substring match on string columns *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val of_table : Table.t -> rel
(** Snapshot of a table as a relation. *)

val field : rel -> Table.row -> string -> Value.t
(** Field access by column name. @raise Table.Schema_error if unknown. *)

val col_index : rel -> string -> int
(** Position of a column in the relation's schema.
    @raise Table.Schema_error if unknown. *)

val validate_pred : rel -> pred -> unit
(** Check every column the predicate references against the relation's
    schema. @raise Table.Schema_error naming the relation, the missing
    column, and the available columns. Run before evaluation so an
    unknown column is an error even on an empty relation. *)

val eval_pred : rel -> pred -> Table.row -> bool
(** Evaluate a predicate against a row of the given relation. Numeric
    comparisons between [Int] and [Float] coerce to float. *)

val select : pred -> rel -> rel
(** Keep the rows satisfying the predicate. Validates the predicate
    first ({!validate_pred}). *)

type access =
  | Scan
  | Probe of {
      ap_col : string;     (** the index column chosen *)
      ap_value : Value.t;  (** the equality literal probed *)
      ap_est : int;        (** estimated rows in the bucket *)
      ap_stats : bool;     (** [true] when the estimate came from
                               {!Table.analyze} statistics rather than
                               an exact bucket length *)
    }
(** The planner's access-path decision for one table predicate: either
    a full scan or an equality probe of one declared index. *)

val plan_access : Table.t -> pred -> access
(** Choose the access path {!select_table} will take, without reading
    any row: each eligible equality conjunct ([Eq] under [And] only)
    that hits a declared index is costed with {!Table.probe_estimate}
    and the smallest estimate wins. This is the plan EXPLAIN renders,
    and calling it does not bump any counter. *)

val run_access : Table.t -> pred -> access -> rel
(** Materialize a chosen access path: the rows it produces {e before}
    the predicate filters them (the whole table for [Scan], one
    bucket's copies for [Probe]). Validates the predicate and bumps the
    select counters — this is the execution half of {!plan_access}'s
    decision, split out so EXPLAIN ANALYZE can time access and refilter
    as distinct plan nodes. A [Probe] whose index vanished between plan
    and execution falls back to the scan. *)

val select_table : Table.t -> pred -> rel
(** Like [select p (of_table t)] but with equality-predicate pushdown:
    executes the {!plan_access} decision, so when a top-level [Eq]
    conjunct hits an index declared on [t] ({!Table.create_index}),
    only that bucket is filtered instead of the whole table. Guaranteed
    to return exactly the rows (and row order) of the full scan. Bumps
    [reldb.select.indexed] or [reldb.select.scan], plus the chosen
    index's per-index hit counter. *)

val eq_conjuncts : pred -> (string * Value.t) list
(** The [Eq] leaves reachable from the root through [And] nodes only —
    the equalities eligible for index probing. *)

val pred_to_string : pred -> string
(** Stable, fully parenthesized text for a predicate (EXPLAIN's
    [Filter:] lines). *)

val project : string list -> rel -> rel
(** Keep (and reorder to) the named columns. *)

val rename : (string * string) list -> rel -> rel
(** Rename columns, [(old, new)] pairs. *)

val join : rel -> rel -> on:(string * string) -> rel
(** Equijoin: rows of the product where [left.col1 = right.col2]. The
    right relation's columns are prefixed with its join column's table
    disambiguator only when names collide, by appending ["'"], so the
    result schema has unique names. *)

val order_by : string -> ?desc:bool -> rel -> rel
(** Stable sort on one column. *)

val distinct : rel -> rel
(** Remove duplicate rows, keeping first occurrences. *)

val limit : int -> rel -> rel

val count : rel -> int

val column_values : rel -> string -> Value.t list
(** All values of one column, in row order. *)

val pareto : x:string -> y:string -> rel -> rel
(** Rows on the Pareto frontier when minimizing both [x] and [y]: no
    other row is <= on both objectives and < on at least one. Rows with
    identical objective values never dominate each other, so duplicate
    optima all survive. Input row order is preserved.
    @raise Table.Schema_error if an objective column is unknown or
    non-numeric. *)

val dominated : x:string -> y:string -> rel -> rel
(** The complement of {!pareto}: rows strictly dominated by some other
    row. Input row order is preserved. *)
