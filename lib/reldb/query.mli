(** Relational-algebra combinators over {!Table}.

    Results are transient relations: a schema plus materialized rows.
    These are the primitives the SQL layer ({!Sql}) and the ICDB server
    compile their requests into. *)

type rel = {
  rname : string;    (** source table name, kept for error messages *)
  rschema : Table.schema;
  rrows : Table.row list;
}

type pred =
  | True
  | Eq of string * Value.t
  | Neq of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | Like of string * string  (** substring match on string columns *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val of_table : Table.t -> rel
(** Snapshot of a table as a relation. *)

val field : rel -> Table.row -> string -> Value.t
(** Field access by column name. @raise Table.Schema_error if unknown. *)

val validate_pred : rel -> pred -> unit
(** Check every column the predicate references against the relation's
    schema. @raise Table.Schema_error naming the relation, the missing
    column, and the available columns. Run before evaluation so an
    unknown column is an error even on an empty relation. *)

val eval_pred : rel -> pred -> Table.row -> bool
(** Evaluate a predicate against a row of the given relation. Numeric
    comparisons between [Int] and [Float] coerce to float. *)

val select : pred -> rel -> rel
(** Keep the rows satisfying the predicate. Validates the predicate
    first ({!validate_pred}). *)

val select_table : Table.t -> pred -> rel
(** Like [select p (of_table t)] but with equality-predicate pushdown:
    when a top-level [Eq] conjunct hits an index declared on [t]
    ({!Table.create_index}), only that bucket is filtered instead of the
    whole table. Guaranteed to return exactly the rows (and row order)
    of the full scan. *)

val eq_conjuncts : pred -> (string * Value.t) list
(** The [Eq] leaves reachable from the root through [And] nodes only —
    the equalities eligible for index probing. *)

val project : string list -> rel -> rel
(** Keep (and reorder to) the named columns. *)

val rename : (string * string) list -> rel -> rel
(** Rename columns, [(old, new)] pairs. *)

val join : rel -> rel -> on:(string * string) -> rel
(** Equijoin: rows of the product where [left.col1 = right.col2]. The
    right relation's columns are prefixed with its join column's table
    disambiguator only when names collide, by appending ["'"], so the
    result schema has unique names. *)

val order_by : string -> ?desc:bool -> rel -> rel
(** Stable sort on one column. *)

val distinct : rel -> rel
(** Remove duplicate rows, keeping first occurrences. *)

val limit : int -> rel -> rel

val count : rel -> int

val column_values : rel -> string -> Value.t list
(** All values of one column, in row order. *)

val pareto : x:string -> y:string -> rel -> rel
(** Rows on the Pareto frontier when minimizing both [x] and [y]: no
    other row is <= on both objectives and < on at least one. Rows with
    identical objective values never dominate each other, so duplicate
    optima all survive. Input row order is preserved.
    @raise Table.Schema_error if an objective column is unknown or
    non-numeric. *)

val dominated : x:string -> y:string -> rel -> rel
(** The complement of {!pareto}: rows strictly dominated by some other
    row. Input row order is preserved. *)
