type schema = (string * Value.ty) list
type row = Value.t array

exception Schema_error of string

(* A secondary hash index over one column. Buckets hold the table's
   physical row arrays in reverse insertion order (same discipline as
   [data]), so a lookup can restore insertion order with one reversal.
   Row arrays are never mutated in place by the table ([update] copies),
   which makes the aliasing between [data] and buckets safe. *)
type index = {
  ix_pos : int;
  ix_buckets : (string, row list) Hashtbl.t;
  ix_hits : Icdb_obs.Metrics.counter;
      (* per-index usage: bumped once per probe the index answers, so
         /metrics can say which indexes earn their maintenance cost *)
}

(* Optimizer statistics for one column, computed by {!analyze}. *)
type col_stats = {
  cs_column : string;
  cs_distinct : int;
  cs_null_frac : float;
  cs_min : Value.t option;
  cs_max : Value.t option;
}

type stats = {
  st_rows : int;
  st_cols : col_stats list;
}

type t = {
  tbl_name : string;
  tbl_schema : schema;
  index : (string, int) Hashtbl.t;  (* column name -> position *)
  mutable data : row list;          (* reverse insertion order *)
  mutable count : int;
  mutable indexes : (string * index) list;  (* column name -> index *)
  mutable tbl_stats : stats option; (* derived state, like indexes: a
                                       snapshot from the last [analyze],
                                       never journaled or persisted *)
}

let schema_err fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let create tbl_name tbl_schema =
  if tbl_schema = [] then schema_err "table %s: empty schema" tbl_name;
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i (col, _) ->
      if Hashtbl.mem index col then
        schema_err "table %s: duplicate column %s" tbl_name col;
      Hashtbl.add index col i)
    tbl_schema;
  { tbl_name; tbl_schema; index; data = []; count = 0; indexes = [];
    tbl_stats = None }

let name t = t.tbl_name
let schema t = t.tbl_schema
let cardinality t = t.count

let column_index t col =
  match Hashtbl.find_opt t.index col with
  | Some i -> i
  | None -> schema_err "table %s: no column %s" t.tbl_name col

let check_row t values =
  let arity = List.length t.tbl_schema in
  if List.length values <> arity then
    schema_err "table %s: expected %d values" t.tbl_name arity;
  List.iter2
    (fun (col, ty) v ->
      if Value.ty_of v <> ty then
        schema_err "table %s: column %s expects %s, got %s" t.tbl_name col
          (Value.ty_name ty)
          (Value.ty_name (Value.ty_of v)))
    t.tbl_schema values

(* Index keys must agree with {!Query.cmp_values} equality: all floats
   that compare equal under [Float.compare] share a key. [-0.] and [0.]
   compare equal but print differently under %h, hence the
   normalisation; every NaN payload compares equal to every other. *)
let norm_float f =
  if Float.is_nan f then "nan"
  else if f = 0.0 then "0"
  else Printf.sprintf "%h" f

(* Key of a value already stored in (or type-checked against) a column
   of type [ty]. *)
let key_of_stored ty (v : Value.t) =
  match ty, v with
  | Value.Tint, Value.Int i -> "i" ^ string_of_int i
  | Value.Tfloat, Value.Float f -> "f" ^ norm_float f
  | Value.Tstr, Value.Str s -> "s" ^ s
  | Value.Tbool, Value.Bool b -> if b then "bT" else "bF"
  | _ ->
      (* check_row guarantees stored values match their column type *)
      invalid_arg "Table.key_of_stored: ill-typed stored value"

(* Probe outcome for an equality literal against a column of type [ty].
   [Never] means the scan-side comparison ({!Query.cmp_values}) can
   never return 0, so the exact answer is the empty set. [Unsupported]
   means we cannot model the scan's coercion with a hash key, so the
   caller must fall back to a scan. *)
type probe = Key of string | Never | Unsupported

(* Largest float magnitude at which every integer is exactly
   representable; beyond it int<->float coercion rounds and a hash key
   can no longer mirror [Float.compare (float_of_int x) f]. *)
let exact_int_float = 9007199254740992.0 (* 2^53 *)

let probe_key ty (v : Value.t) =
  match ty, v with
  | Value.Tint, Value.Int _
  | Value.Tfloat, Value.Float _
  | Value.Tstr, Value.Str _
  | Value.Tbool, Value.Bool _ -> Key (key_of_stored ty v)
  | Value.Tfloat, Value.Int i ->
      (* scan compares Float.compare x (float_of_int i) *)
      Key ("f" ^ norm_float (float_of_int i))
  | Value.Tint, Value.Float f ->
      if Float.is_nan f then Never
      else if Float.is_integer f && Float.abs f <= exact_int_float then
        Key ("i" ^ string_of_int (int_of_float f))
      else if Float.is_integer f then Unsupported
      else Never
  | _ -> Never (* cross-type comparisons are never equal *)

let bucket_add ix row =
  let key = key_of_stored (Value.ty_of row.(ix.ix_pos)) row.(ix.ix_pos) in
  let prev = Option.value ~default:[] (Hashtbl.find_opt ix.ix_buckets key) in
  Hashtbl.replace ix.ix_buckets key (row :: prev)

(* Remove one physical row (pointer equality) from its bucket. *)
let bucket_remove ix row =
  let key = key_of_stored (Value.ty_of row.(ix.ix_pos)) row.(ix.ix_pos) in
  match Hashtbl.find_opt ix.ix_buckets key with
  | None -> ()
  | Some rows ->
      let removed = ref false in
      let rows' =
        List.filter
          (fun r ->
            if (not !removed) && r == row then begin
              removed := true;
              false
            end
            else true)
          rows
      in
      if rows' = [] then Hashtbl.remove ix.ix_buckets key
      else Hashtbl.replace ix.ix_buckets key rows'

let hits_counter t col =
  Icdb_obs.Metrics.counter
    (Printf.sprintf "reldb.index.%s.%s.hits" t.tbl_name col)

let build_index t col pos =
  let ix =
    { ix_pos = pos; ix_buckets = Hashtbl.create 256;
      ix_hits = hits_counter t col }
  in
  (* [data] is newest-first; build oldest-first so each bucket ends up
     newest-first, matching the incremental [bucket_add] on insert. *)
  List.iter (bucket_add ix) (List.rev t.data);
  ix

let reindex t =
  t.indexes <-
    List.map (fun (col, ix) -> (col, build_index t col ix.ix_pos)) t.indexes

let create_index t col =
  let pos = column_index t col in
  if not (List.mem_assoc col t.indexes) then
    t.indexes <- (col, build_index t col pos) :: t.indexes

let drop_index t col =
  ignore (column_index t col);
  t.indexes <- List.remove_assoc col t.indexes

let has_index t col = List.mem_assoc col t.indexes
let indexed_columns t = List.rev_map fst t.indexes

let index_lookup t col v =
  match List.assoc_opt col t.indexes with
  | None -> None
  | Some ix -> (
      let (_, ty) = List.nth t.tbl_schema ix.ix_pos in
      match probe_key ty v with
      | Unsupported -> None
      | Never ->
          Icdb_obs.Metrics.incr ix.ix_hits;
          Some []
      | Key key ->
          Icdb_obs.Metrics.incr ix.ix_hits;
          let bucket =
            Option.value ~default:[] (Hashtbl.find_opt ix.ix_buckets key)
          in
          Some (List.rev_map Array.copy bucket))

(* How many rows an equality probe would return, without materializing
   (or copying) the bucket: the planner calls this once per candidate
   index, and only the winner pays {!index_lookup}'s copy. When the
   table carries {!analyze} statistics the estimate is
   rows / distinct(col) — O(1), no bucket walk at all — which is what
   lets a skewed-selectivity index lose to a finer one even before any
   bucket is touched. *)
let probe_estimate t col v =
  match List.assoc_opt col t.indexes with
  | None -> None
  | Some ix -> (
      let (_, ty) = List.nth t.tbl_schema ix.ix_pos in
      match probe_key ty v with
      | Unsupported -> None
      | Never -> Some (`Bucket 0)
      | Key key -> (
          let from_stats =
            match t.tbl_stats with
            | None -> None
            | Some st ->
                List.find_map
                  (fun cs ->
                    if String.equal cs.cs_column col && cs.cs_distinct > 0
                    then Some (`Stats (st.st_rows / cs.cs_distinct))
                    else None)
                  st.st_cols
          in
          match from_stats with
          | Some est -> Some est
          | None ->
              Some
                (`Bucket
                   (match Hashtbl.find_opt ix.ix_buckets key with
                    | None -> 0
                    | Some rows -> List.length rows))))

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

(* "Null" in a schema with no NULLs: the values a generator leaves
   behind when it has nothing to say — NaN floats and empty strings. *)
let value_is_nullish = function
  | Value.Float f -> Float.is_nan f
  | Value.Str "" -> true
  | _ -> false

let analyze t =
  let ncols = List.length t.tbl_schema in
  let seen = Array.init ncols (fun _ -> Hashtbl.create 64) in
  let nulls = Array.make ncols 0 in
  let mins = Array.make ncols None in
  let maxs = Array.make ncols None in
  List.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          Hashtbl.replace seen.(i) (key_of_stored (Value.ty_of v) v) ();
          if value_is_nullish v then nulls.(i) <- nulls.(i) + 1;
          (match mins.(i) with
           | Some m when Value.compare v m >= 0 -> ()
           | _ -> mins.(i) <- Some v);
          match maxs.(i) with
          | Some m when Value.compare v m <= 0 -> ()
          | _ -> maxs.(i) <- Some v)
        row)
    t.data;
  let rows = t.count in
  let st_cols =
    List.mapi
      (fun i (cs_column, _ty) ->
        { cs_column;
          cs_distinct = Hashtbl.length seen.(i);
          cs_null_frac =
            (if rows = 0 then 0.0
             else float_of_int nulls.(i) /. float_of_int rows);
          cs_min = mins.(i);
          cs_max = maxs.(i) })
      t.tbl_schema
  in
  let st = { st_rows = rows; st_cols } in
  t.tbl_stats <- Some st;
  st

let stats t = t.tbl_stats
let clear_stats t = t.tbl_stats <- None

let insert t values =
  check_row t values;
  let row = Array.of_list values in
  t.data <- row :: t.data;
  t.count <- t.count + 1;
  List.iter (fun (_, ix) -> bucket_add ix row) t.indexes

let insert_assoc t bindings =
  let lookup (col, _ty) =
    match List.assoc_opt col bindings with
    | Some v -> v
    | None -> schema_err "table %s: column %s not bound" t.tbl_name col
  in
  List.iter
    (fun (col, _) ->
      if not (Hashtbl.mem t.index col) then
        schema_err "table %s: no column %s" t.tbl_name col)
    bindings;
  insert t (List.map lookup t.tbl_schema)

let rows t = List.rev_map Array.copy t.data

let get row t col = row.(column_index t col)

let filter t pred = List.filter pred (rows t)

let update t pred assign =
  let updated = ref 0 in
  let apply row =
    if pred row then begin
      incr updated;
      let row' = Array.copy row in
      List.iter
        (fun (col, v) ->
          let i = column_index t col in
          let (_, ty) = List.nth t.tbl_schema i in
          if Value.ty_of v <> ty then
            schema_err "table %s: column %s expects %s" t.tbl_name col
              (Value.ty_name ty);
          row'.(i) <- v)
        (assign row);
      row'
    end
    else row
  in
  t.data <- List.map apply t.data;
  if !updated > 0 then reindex t;
  !updated

let delete t pred =
  let before = t.count in
  t.data <- List.filter (fun r -> not (pred r)) t.data;
  t.count <- List.length t.data;
  if t.count <> before then reindex t;
  before - t.count

(* Remove a single row matching [pred] (the most recently inserted one,
   if several match). Journal replay deletes row-by-row and must not
   collapse duplicates. *)
let delete_one t pred =
  let rec go = function
    | [] -> None
    | row :: rest when pred row -> Some (row, rest)
    | row :: rest ->
        Option.map (fun (hit, l) -> (hit, row :: l)) (go rest)
  in
  match go t.data with
  | Some (hit, data) ->
      t.data <- data;
      t.count <- t.count - 1;
      List.iter (fun (_, ix) -> bucket_remove ix hit) t.indexes;
      true
  | None -> false

let clear t =
  t.data <- [];
  t.count <- 0;
  t.tbl_stats <- None;
  List.iter (fun (_, ix) -> Hashtbl.reset ix.ix_buckets) t.indexes

let copy t =
  let t' =
    { t with
      data = List.map Array.copy t.data;
      index = Hashtbl.copy t.index;
      indexes = t.indexes }
  in
  reindex t';
  t'

let restore t ~from =
  if from.tbl_schema <> t.tbl_schema then
    schema_err "restore: schema mismatch for table %s" t.tbl_name;
  t.data <- List.map Array.copy from.data;
  t.count <- from.count;
  t.tbl_stats <- from.tbl_stats;
  reindex t
