type schema = (string * Value.ty) list
type row = Value.t array

exception Schema_error of string

type t = {
  tbl_name : string;
  tbl_schema : schema;
  index : (string, int) Hashtbl.t;  (* column name -> position *)
  mutable data : row list;          (* reverse insertion order *)
  mutable count : int;
}

let schema_err fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let create tbl_name tbl_schema =
  if tbl_schema = [] then schema_err "table %s: empty schema" tbl_name;
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i (col, _) ->
      if Hashtbl.mem index col then
        schema_err "table %s: duplicate column %s" tbl_name col;
      Hashtbl.add index col i)
    tbl_schema;
  { tbl_name; tbl_schema; index; data = []; count = 0 }

let name t = t.tbl_name
let schema t = t.tbl_schema
let cardinality t = t.count

let column_index t col =
  match Hashtbl.find_opt t.index col with
  | Some i -> i
  | None -> schema_err "table %s: no column %s" t.tbl_name col

let check_row t values =
  let arity = List.length t.tbl_schema in
  if List.length values <> arity then
    schema_err "table %s: expected %d values" t.tbl_name arity;
  List.iter2
    (fun (col, ty) v ->
      if Value.ty_of v <> ty then
        schema_err "table %s: column %s expects %s, got %s" t.tbl_name col
          (Value.ty_name ty)
          (Value.ty_name (Value.ty_of v)))
    t.tbl_schema values

let insert t values =
  check_row t values;
  t.data <- Array.of_list values :: t.data;
  t.count <- t.count + 1

let insert_assoc t bindings =
  let lookup (col, _ty) =
    match List.assoc_opt col bindings with
    | Some v -> v
    | None -> schema_err "table %s: column %s not bound" t.tbl_name col
  in
  List.iter
    (fun (col, _) ->
      if not (Hashtbl.mem t.index col) then
        schema_err "table %s: no column %s" t.tbl_name col)
    bindings;
  insert t (List.map lookup t.tbl_schema)

let rows t = List.rev_map Array.copy t.data

let get row t col = row.(column_index t col)

let filter t pred = List.filter pred (rows t)

let update t pred assign =
  let updated = ref 0 in
  let apply row =
    if pred row then begin
      incr updated;
      let row' = Array.copy row in
      List.iter
        (fun (col, v) ->
          let i = column_index t col in
          let (_, ty) = List.nth t.tbl_schema i in
          if Value.ty_of v <> ty then
            schema_err "table %s: column %s expects %s" t.tbl_name col
              (Value.ty_name ty);
          row'.(i) <- v)
        (assign row);
      row'
    end
    else row
  in
  t.data <- List.map apply t.data;
  !updated

let delete t pred =
  let before = t.count in
  t.data <- List.filter (fun r -> not (pred r)) t.data;
  t.count <- List.length t.data;
  before - t.count

(* Remove a single row matching [pred] (the most recently inserted one,
   if several match). Journal replay deletes row-by-row and must not
   collapse duplicates. *)
let delete_one t pred =
  let rec go = function
    | [] -> None
    | row :: rest when pred row -> Some rest
    | row :: rest -> Option.map (fun l -> row :: l) (go rest)
  in
  match go t.data with
  | Some data ->
      t.data <- data;
      t.count <- t.count - 1;
      true
  | None -> false

let clear t =
  t.data <- [];
  t.count <- 0

let copy t =
  { t with
    data = List.map Array.copy t.data;
    index = Hashtbl.copy t.index }

let restore t ~from =
  if from.tbl_schema <> t.tbl_schema then
    schema_err "restore: schema mismatch for table %s" t.tbl_name;
  t.data <- List.map Array.copy from.data;
  t.count <- from.count
