(* Write-ahead journal for the relational engine (the durability the
   paper gets for free from INGRES, §2.3).

   Every mutating operation on a journaled [Db.t] is appended here as a
   typed, checksummed record *before* the caller regains control, so a
   crash at any point loses at most the operation in flight. Recovery
   ([Db.replay_journal] / [Db.recover]) replays the longest valid prefix
   over the last snapshot and truncates torn or corrupt tails.

   Record format, one line per record:

     <crc32-hex-of-payload> TAB <payload> NL

   where the payload is tab-separated fields, the first being a one-byte
   tag:

     C <table> <col>=<ty> ...     create table
     X <table>                    drop table
     I <table> <value> ...        insert row    (Value.encode, so tabs
     D <table> <value> ...        delete row     and newlines are escaped)
     B <tag>                      transaction begin   (App B §7)
     T <tag>                      transaction commit

   A record whose checksum does not match, or that does not parse, marks
   the beginning of a torn tail: everything from it on is discarded. *)

type entry =
  | Create of string * (string * Value.ty) list
  | Drop of string
  | Insert of string * Value.t list
  | Delete of string * Value.t list
  | Tx_begin of string
  | Tx_commit of string

exception Journal_error of string

let journal_err fmt = Printf.ksprintf (fun s -> raise (Journal_error s)) fmt

(* Hook fired before each append; the fault-injection harness
   (lib/core/faultinject.ml) points this at its journal-append site. *)
let append_hook : (unit -> unit) ref = ref (fun () -> ())

(* Hook fired at the top of each [stream_from]; wired to the
   journal_stream fault-injection site the same way. *)
let stream_hook : (unit -> unit) ref = ref (fun () -> ())

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3 polynomial, table-driven)                        *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Record encoding                                                     *)
(* ------------------------------------------------------------------ *)

let ty_name = Value.ty_name

let ty_of_name = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstr
  | "bool" -> Value.Tbool
  | s -> journal_err "unknown column type %s" s

let check_field what s =
  if String.contains s '\t' || String.contains s '\n' then
    journal_err "%s %S may not contain tabs or newlines" what s

let encode_entry e =
  let fields =
    match e with
    | Create (name, schema) ->
        check_field "table name" name;
        "C" :: name
        :: List.map
             (fun (col, ty) ->
               check_field "column name" col;
               col ^ "=" ^ ty_name ty)
             schema
    | Drop name ->
        check_field "table name" name;
        [ "X"; name ]
    | Insert (name, values) ->
        check_field "table name" name;
        "I" :: name :: List.map Value.encode values
    | Delete (name, values) ->
        check_field "table name" name;
        "D" :: name :: List.map Value.encode values
    | Tx_begin tag ->
        check_field "transaction tag" tag;
        [ "B"; tag ]
    | Tx_commit tag ->
        check_field "transaction tag" tag;
        [ "T"; tag ]
  in
  String.concat "\t" fields

let decode_entry payload =
  match String.split_on_char '\t' payload with
  | "C" :: name :: cols ->
      let schema =
        List.map
          (fun col ->
            match String.rindex_opt col '=' with
            | Some i ->
                ( String.sub col 0 i,
                  ty_of_name (String.sub col (i + 1) (String.length col - i - 1)) )
            | None -> journal_err "malformed column field %S" col)
          cols
      in
      Create (name, schema)
  | [ "X"; name ] -> Drop name
  | "I" :: name :: values -> Insert (name, List.map Value.decode values)
  | "D" :: name :: values -> Delete (name, List.map Value.decode values)
  | [ "B"; tag ] -> Tx_begin tag
  | [ "T"; tag ] -> Tx_commit tag
  | _ -> journal_err "unknown record %S" payload

let encode_line e =
  let payload = encode_entry e in
  Printf.sprintf "%08lx\t%s\n" (crc32 payload) payload

(* Returns None for a torn or corrupt line. *)
let decode_line line =
  match String.index_opt line '\t' with
  | None -> None
  | Some i ->
      let crc_field = String.sub line 0 i in
      let payload = String.sub line (i + 1) (String.length line - i - 1) in
      (match Int32.of_string_opt ("0x" ^ crc_field) with
       | Some crc when crc = crc32 payload -> (
           match decode_entry payload with
           | e -> Some e
           | exception Journal_error _ -> None
           | exception Failure _ -> None)
       | _ -> None)

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  jpath : string;
  mutable oc : out_channel;
  (* Replication cursor. Record sequence numbers are monotonic across
     the journal's whole life, surviving checkpoint truncations: [base]
     is the sequence number of the first record currently in the file
     (persisted in the "<jpath>.seq" sidecar), [next] the number the
     next append will get. A follower whose cursor is below [base] has
     fallen behind the last truncation and must re-sync from a full
     checkpoint. *)
  mutable base : int;
  mutable next : int;
}

let path t = t.jpath
let base_seq t = t.base
let next_seq t = t.next

let seq_path jpath = jpath ^ ".seq"

let read_base jpath =
  match open_in (seq_path jpath) with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match int_of_string_opt (String.trim (input_line ic)) with
          | Some n when n >= 0 -> n
          | Some _ | None -> 0
          | exception End_of_file -> 0)
  | exception Sys_error _ -> 0

(* Atomic (write-to-temp + rename) so a torn sidecar can never make the
   cursor go backwards silently. *)
let write_base jpath base =
  let tmp = seq_path jpath ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Printf.fprintf oc "%d\n" base);
  Sys.rename tmp (seq_path jpath)

(* Valid records currently in the file — the same longest-valid-prefix
   rule replay uses, so the cursor agrees with what recovery keeps. *)
let count_records jpath =
  if not (Sys.file_exists jpath) then 0
  else begin
    let ic = open_in_bin jpath in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = ref 0 in
        (try
           let stop = ref false in
           while not !stop do
             match decode_line (input_line ic) with
             | Some _ -> incr n
             | None -> stop := true
           done
         with End_of_file -> ());
        !n)
  end

let open_append jpath =
  let base = read_base jpath in
  let count = count_records jpath in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 jpath
  in
  { jpath; oc; base; next = base + count }

(* Seed a journal's cursor before it exists: a follower installing a
   checkpoint fetched at sequence [seq] writes the sidecar and an empty
   journal so the next [open_append] continues numbering from [seq]. *)
let install_base jpath seq =
  write_base jpath seq;
  if not (Sys.file_exists jpath) then
    close_out (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 jpath)

let m_appends = Icdb_obs.Metrics.counter "journal.appends"

let append t e =
  Icdb_obs.Trace.with_span "journal.append" @@ fun () ->
  Icdb_obs.Metrics.incr m_appends;
  !append_hook ();
  output_string t.oc (encode_line e);
  flush t.oc;
  t.next <- t.next + 1

let close t = close_out t.oc

(* Truncate the journal after a snapshot checkpoint has absorbed every
   journaled operation. The sequence base advances to [next] and is
   persisted first: a crash between the sidecar write and the
   truncation re-numbers the stale records, which the checkpoint
   contract already tolerates (recovery loads the snapshot and replays
   idempotently; see Db.checkpoint). *)
let reset t =
  t.base <- t.next;
  write_base t.jpath t.base;
  close_out t.oc;
  t.oc <- open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 t.jpath

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

(* The longest valid record prefix of the journal at [jpath], plus
   whether a torn/corrupt tail was found after it. A missing journal
   reads as empty. *)
let m_replayed = Icdb_obs.Metrics.counter "journal.replayed_entries"

let replay jpath =
  Icdb_obs.Trace.with_span "journal.replay" @@ fun () ->
  if not (Sys.file_exists jpath) then ([], false)
  else begin
    let ic = open_in_bin jpath in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let entries = ref [] in
        let torn = ref false in
        (try
           while not !torn do
             let line = input_line ic in
             match decode_line line with
             | Some e -> entries := e :: !entries
             | None -> torn := true
           done
         with End_of_file -> ());
        (* a final line without a newline that still decodes is fine;
           input_line already handled it above *)
        let entries = List.rev !entries in
        Icdb_obs.Metrics.incr ~by:(List.length entries) m_replayed;
        (entries, !torn))
  end

(* Rewrite the journal to contain exactly [entries] (used by recovery to
   drop torn tails and uncommitted transactions). Write-to-temp + rename
   so a crash during recovery cannot make things worse. *)
let rewrite jpath entries =
  let tmp = jpath ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun e -> output_string oc (encode_line e)) entries);
  Sys.rename tmp jpath

(* ------------------------------------------------------------------ *)
(* Replication tail reads                                              *)
(* ------------------------------------------------------------------ *)

type stream = {
  st_first : int;
  st_entries : entry list;
  st_torn : bool;
}

let m_streamed = Icdb_obs.Metrics.counter "journal.streamed_entries"

(* Tail-read from a global sequence number. Reads the live file, so a
   record whose final flush is racing us decodes as torn; like replay,
   the stream stops at the longest valid prefix and reports the torn
   tail rather than failing — the next poll picks the record up once
   its bytes are complete. *)
let stream_from t ~seq ?(max_records = max_int) () =
  Icdb_obs.Trace.with_span "journal.stream" @@ fun () ->
  !stream_hook ();
  if seq < t.base || seq > t.next then
    journal_err "stream_from: seq %d outside journal window [%d, %d)" seq
      t.base t.next;
  flush t.oc;
  if not (Sys.file_exists t.jpath) then
    { st_first = seq; st_entries = []; st_torn = false }
  else begin
    let ic = open_in_bin t.jpath in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let idx = ref t.base in
        let out = ref [] in
        let torn = ref false in
        let count = ref 0 in
        (try
           while (not !torn) && !count < max_records do
             let line = input_line ic in
             match decode_line line with
             | Some e ->
                 if !idx >= seq then begin
                   out := e :: !out;
                   incr count
                 end;
                 incr idx
             | None -> torn := true
           done
         with End_of_file -> ());
        Icdb_obs.Metrics.incr ~by:!count m_streamed;
        { st_first = seq; st_entries = List.rev !out; st_torn = !torn })
  end
