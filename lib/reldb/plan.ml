(* An explicit query-plan value, rendered by EXPLAIN and summarized on
   slow-log entries and traced spans.

   A plan is a linear pipeline of steps in execution order (this engine
   has no plan trees yet — one access step, then filters and
   decorators). Each step carries static text decided at plan time;
   EXPLAIN ANALYZE execution fills in the mutable actuals, which render
   as a trailing annotation. Rendering is deterministic: same plan,
   same text, so golden tests and CI greps can rely on it. *)

type step = {
  s_op : string;      (* "Index Probe", "Seq Scan", "Filter", ... *)
  s_detail : string;  (* operator-specific text, may be "" *)
  mutable s_rows_in : int option;   (* rows entering the step *)
  mutable s_rows_out : int option;  (* rows leaving the step *)
  mutable s_ms : float option;      (* wall time spent in the step *)
}

type t = {
  p_table : string;
  p_kind : [ `Indexed | `Scan ];
  p_column : string option;  (* the probed index column, if indexed *)
  p_steps : step list;  (* execution order; head is the access step *)
}

let step ?(detail = "") op =
  { s_op = op; s_detail = detail; s_rows_in = None; s_rows_out = None;
    s_ms = None }

let actuals st ~rows_in ~rows_out ~ms =
  st.s_rows_in <- Some rows_in;
  st.s_rows_out <- Some rows_out;
  st.s_ms <- Some ms

let kind_name = function `Indexed -> "indexed" | `Scan -> "scan"

(* One-word-ish plan summary for slow-log entries, span attributes and
   the statement-stats table: "indexed(table.column)" / "scan(table)". *)
let summary t =
  match t.p_kind, t.p_column with
  | `Indexed, Some col -> Printf.sprintf "indexed(%s.%s)" t.p_table col
  | `Indexed, None -> Printf.sprintf "indexed(%s)" t.p_table
  | `Scan, _ -> Printf.sprintf "scan(%s)" t.p_table

let render_step ~first st =
  let buf = Buffer.create 64 in
  if not first then Buffer.add_string buf "  ";
  Buffer.add_string buf st.s_op;
  if st.s_detail <> "" then begin
    Buffer.add_string buf (if first then " " else ": ");
    Buffer.add_string buf st.s_detail
  end;
  (match st.s_rows_in, st.s_rows_out, st.s_ms with
   | Some rin, Some rout, Some ms ->
       Buffer.add_string buf
         (Printf.sprintf " (actual %d -> %d rows, %.3f ms)" rin rout ms)
   | _ -> ());
  Buffer.contents buf

let render t =
  List.mapi (fun i st -> render_step ~first:(i = 0) st) t.p_steps
