exception Db_error of string

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable snapshots : (string * Table.t) list list;  (* stack of table copies *)
  mutable journal : Journal.t option;  (* write-ahead journal, if attached *)
}

let db_err fmt = Printf.ksprintf (fun s -> raise (Db_error s)) fmt

let create () = { tables = Hashtbl.create 16; snapshots = []; journal = None }

(* ------------------------------------------------------------------ *)
(* Journaling                                                          *)
(* ------------------------------------------------------------------ *)

(* Once attached, every mutation made through the journaled operations
   below ([create_table], [insert], [delete_where], the transaction
   marks) is logged; [replay_journal] re-applies the log after a crash.
   Mutations made directly through [Table] bypass the journal — callers
   that care about durability must go through this module. *)
let attach_journal t j = t.journal <- Some j

let detach_journal t = t.journal <- None

let journal t = t.journal

let journal_entry t e =
  match t.journal with None -> () | Some j -> Journal.append j e

let create_table t name schema =
  if Hashtbl.mem t.tables name then db_err "table %s already exists" name;
  let tbl = Table.create name schema in
  Hashtbl.add t.tables name tbl;
  journal_entry t (Journal.Create (name, schema));
  tbl

let table_opt t name = Hashtbl.find_opt t.tables name

let table t name =
  match table_opt t name with
  | Some tbl -> tbl
  | None -> db_err "no table %s" name

let drop_table t name =
  if not (Hashtbl.mem t.tables name) then db_err "no table %s" name;
  Hashtbl.remove t.tables name;
  journal_entry t (Journal.Drop name)

(* Journaled row operations. The mutation is applied first (so schema
   errors surface before anything reaches the log), then recorded. A
   crash between the two loses only the operation in flight, which is
   exactly the contract recovery provides. *)

let insert t name values =
  Table.insert (table t name) values;
  journal_entry t (Journal.Insert (name, values))

let delete_where t name pred =
  let tbl = table t name in
  let victims = Table.filter tbl pred in
  let n = Table.delete tbl pred in
  List.iter
    (fun row -> journal_entry t (Journal.Delete (name, Array.to_list row)))
    victims;
  n

(* Application-level transaction marks (App B §7): entries recorded
   between an uncommitted [mark_tx_begin] and the end of the journal are
   rolled back by [replay_journal]. These are independent of the
   in-memory snapshot transactions below, which are not journaled. *)

let mark_tx_begin t tag = journal_entry t (Journal.Tx_begin tag)

let mark_tx_commit t tag = journal_entry t (Journal.Tx_commit tag)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let begin_tx t =
  let snap =
    Hashtbl.fold (fun name tbl acc -> (name, Table.copy tbl) :: acc) t.tables []
  in
  t.snapshots <- snap :: t.snapshots

let commit t =
  match t.snapshots with
  | [] -> db_err "commit: no active transaction"
  | _ :: rest -> t.snapshots <- rest

let rollback t =
  match t.snapshots with
  | [] -> db_err "rollback: no active transaction"
  | snap :: rest ->
      (* Tables created during the transaction are dropped; snapshotted
         tables are restored. *)
      let snap_names = List.map fst snap in
      let current = table_names t in
      List.iter
        (fun name ->
          if not (List.mem name snap_names) then Hashtbl.remove t.tables name)
        current;
      List.iter
        (fun (name, copy) ->
          match Hashtbl.find_opt t.tables name with
          | Some tbl -> Table.restore tbl ~from:copy
          | None -> Hashtbl.add t.tables name copy)
        snap;
      t.snapshots <- rest

let in_tx t = t.snapshots <> []

let with_tx t f =
  begin_tx t;
  match f () with
  | result ->
      commit t;
      result
  | exception e ->
      rollback t;
      raise e

(* Persistence format, line-oriented:
     TABLE <name>
     COL <name> <ty>
     ROW
     <encoded value>        (one per column)
     END                    (end of table)  *)

let save t path =
  (* write-to-temp + rename: a crash mid-save never clobbers the last
     good snapshot *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun name ->
          let tbl = table t name in
          Printf.fprintf oc "TABLE %s\n" name;
          List.iter
            (fun (col, ty) ->
              Printf.fprintf oc "COL %s %s\n" col (Value.ty_name ty))
            (Table.schema tbl);
          List.iter
            (fun row ->
              output_string oc "ROW\n";
              Array.iter
                (fun v -> Printf.fprintf oc "%s\n" (Value.encode v))
                row)
            (Table.rows tbl);
          output_string oc "END\n")
        (table_names t));
  Sys.rename tmp path

let ty_of_name = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstr
  | "bool" -> Value.Tbool
  | s -> db_err "unknown type %s" s

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let t = create () in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      let lines = List.rev !lines in
      let rec parse_tables = function
        | [] -> ()
        | line :: rest when String.length line > 6 && String.sub line 0 6 = "TABLE " ->
            let name = String.sub line 6 (String.length line - 6) in
            parse_cols name [] rest
        | "" :: rest -> parse_tables rest
        | line :: _ -> db_err "load: expected TABLE, got %S" line
      and parse_cols name cols = function
        | line :: rest when String.length line > 4 && String.sub line 0 4 = "COL " -> (
            match String.split_on_char ' ' line with
            | [ "COL"; col; ty ] -> parse_cols name ((col, ty_of_name ty) :: cols) rest
            | _ -> db_err "load: malformed column line %S" line)
        | rest ->
            let tbl = create_table t name (List.rev cols) in
            parse_rows tbl (List.length cols) rest
      and parse_rows tbl arity = function
        | "ROW" :: rest ->
            let rec take k acc = function
              | rest when k = 0 -> (List.rev acc, rest)
              | v :: rest -> take (k - 1) (Value.decode v :: acc) rest
              | [] -> db_err "load: truncated row"
            in
            let values, rest = take arity [] rest in
            Table.insert tbl values;
            parse_rows tbl arity rest
        | "END" :: rest -> parse_tables rest
        | line :: _ -> db_err "load: expected ROW or END, got %S" line
        | [] -> db_err "load: missing END"
      in
      parse_tables lines;
      t)

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

type replay_report = {
  rp_applied : int;                     (* entries re-applied *)
  rp_discarded : Journal.entry list;    (* uncommitted-transaction tail *)
  rp_torn : bool;                       (* a torn/corrupt tail was cut *)
}

(* Split the valid entry list at the first transaction begin that never
   commits: everything from it on is an uncommitted tail and must be
   rolled back (App B §7 — instances generated in an unfinished
   transaction are not kept). *)
let split_uncommitted entries =
  let arr = Array.of_list entries in
  let open_txs = Hashtbl.create 4 in
  Array.iteri
    (fun i e ->
      match e with
      | Journal.Tx_begin tag -> Hashtbl.replace open_txs tag i
      | Journal.Tx_commit tag -> Hashtbl.remove open_txs tag
      | _ -> ())
    arr;
  match Hashtbl.fold (fun _ i acc -> min i acc) open_txs max_int with
  | cut when cut = max_int -> (entries, [])
  | cut ->
      ( Array.to_list (Array.sub arr 0 cut),
        Array.to_list (Array.sub arr cut (Array.length arr - cut)) )

let apply_entry t = function
  | Journal.Create (name, schema) ->
      if not (Hashtbl.mem t.tables name) then
        ignore (create_table t name schema)
  | Journal.Drop name -> if Hashtbl.mem t.tables name then drop_table t name
  | Journal.Insert (name, values) -> Table.insert (table t name) values
  | Journal.Delete (name, values) ->
      let want = Array.of_list values in
      let eq row =
        Array.length row = Array.length want
        && Array.for_all2 (fun a b -> Value.equal a b) row want
      in
      ignore (Table.delete_one (table t name) eq)
  | Journal.Tx_begin _ | Journal.Tx_commit _ -> ()

(* Replay the journal at [journal_path] over the (snapshot- or
   bootstrap-initialised) database [t]. Applies the longest valid,
   committed prefix; truncates the journal file to exactly that prefix
   so subsequent appends continue from a consistent point. The journal
   must not be attached to [t] while replaying. *)
let replay_journal t ~journal_path =
  if t.journal <> None then db_err "replay_journal: journal is attached";
  let entries, torn = Journal.replay journal_path in
  let applied, discarded = split_uncommitted entries in
  List.iter (apply_entry t) applied;
  if torn || discarded <> [] then Journal.rewrite journal_path applied;
  { rp_applied = List.length applied; rp_discarded = discarded; rp_torn = torn }

(* One-call recovery: load the last snapshot (or start empty), replay
   the journal over it. The returned database has no journal attached —
   callers re-attach with [attach_journal] once ready to accept writes. *)
let recover ?snapshot ~journal_path () =
  let t =
    match snapshot with
    | Some p when Sys.file_exists p -> load p
    | _ -> create ()
  in
  let report = replay_journal t ~journal_path in
  (t, report)

(* Checkpoint: absorb the journal into a snapshot, then truncate it.
   Crash order is safe at every point: the snapshot rename is atomic,
   and until the journal is reset a replay over the new snapshot merely
   re-applies operations the snapshot already contains (inserts would
   duplicate, hence reset immediately follows rename; a crash between
   the two is healed because recovery loads the snapshot and the journal
   still replays idempotent creates and re-inserts — callers that need
   exactness should recover then checkpoint again). *)
let checkpoint t ~snapshot =
  save t snapshot;
  match t.journal with Some j -> Journal.reset j | None -> ()
