(** In-memory relations with named, typed columns.

    A table owns its schema and rows. Rows are value arrays in schema
    order; all mutating operations type-check values against the schema.
    Row order is insertion order (stable), as synthesis tools rely on
    deterministic listings. *)

type schema = (string * Value.ty) list
(** Column names with their types, in column order. Names are unique. *)

type row = Value.t array

type t

exception Schema_error of string
(** Raised on arity/type mismatches, duplicate or unknown columns. *)

val create : string -> schema -> t
(** [create name schema] is an empty table.
    @raise Schema_error on duplicate column names or an empty schema. *)

val name : t -> string
val schema : t -> schema
val cardinality : t -> int

val column_index : t -> string -> int
(** Position of a column. @raise Schema_error if unknown. *)

val insert : t -> Value.t list -> unit
(** Append a row. @raise Schema_error on arity or type mismatch. *)

val insert_assoc : t -> (string * Value.t) list -> unit
(** Append a row given as column bindings; every column must be bound. *)

val rows : t -> row list
(** All rows in insertion order. The arrays are copies: mutating them
    does not affect the table. *)

val get : row -> t -> string -> Value.t
(** [get row t col] is the field of [row] at column [col] of [t]. *)

val filter : t -> (row -> bool) -> row list
(** Rows satisfying a predicate, in order. *)

val update : t -> (row -> bool) -> (row -> (string * Value.t) list) -> int
(** [update t pred assign] rewrites the given columns of each matching
    row; returns the number of rows updated. *)

val delete : t -> (row -> bool) -> int
(** Remove matching rows; returns the number removed. *)

val delete_one : t -> (row -> bool) -> bool
(** Remove a single matching row (the most recently inserted one if
    several match); [false] when none matched. Journal replay deletes
    row-by-row and must not collapse duplicate rows. *)

val clear : t -> unit

val copy : t -> t
(** Deep copy (used by transaction snapshots). *)

val restore : t -> from:t -> unit
(** Overwrite the contents of a table with those of a snapshot that has
    the same schema. *)
