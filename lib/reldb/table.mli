(** In-memory relations with named, typed columns.

    A table owns its schema and rows. Rows are value arrays in schema
    order; all mutating operations type-check values against the schema.
    Row order is insertion order (stable), as synthesis tools rely on
    deterministic listings. *)

type schema = (string * Value.ty) list
(** Column names with their types, in column order. Names are unique. *)

type row = Value.t array

type t

exception Schema_error of string
(** Raised on arity/type mismatches, duplicate or unknown columns. *)

val create : string -> schema -> t
(** [create name schema] is an empty table.
    @raise Schema_error on duplicate column names or an empty schema. *)

val name : t -> string
val schema : t -> schema
val cardinality : t -> int

val column_index : t -> string -> int
(** Position of a column. @raise Schema_error if unknown. *)

val insert : t -> Value.t list -> unit
(** Append a row. @raise Schema_error on arity or type mismatch. *)

val insert_assoc : t -> (string * Value.t) list -> unit
(** Append a row given as column bindings; every column must be bound. *)

val rows : t -> row list
(** All rows in insertion order. The arrays are copies: mutating them
    does not affect the table. *)

val get : row -> t -> string -> Value.t
(** [get row t col] is the field of [row] at column [col] of [t]. *)

val filter : t -> (row -> bool) -> row list
(** Rows satisfying a predicate, in order. *)

val update : t -> (row -> bool) -> (row -> (string * Value.t) list) -> int
(** [update t pred assign] rewrites the given columns of each matching
    row; returns the number of rows updated. *)

val delete : t -> (row -> bool) -> int
(** Remove matching rows; returns the number removed. *)

val delete_one : t -> (row -> bool) -> bool
(** Remove a single matching row (the most recently inserted one if
    several match); [false] when none matched. Journal replay deletes
    row-by-row and must not collapse duplicate rows. *)

val clear : t -> unit

(** {2 Secondary indexes}

    A table may carry hash indexes over individual columns. Indexes are
    derived, in-memory state: they are not persisted or journaled, and a
    freshly recovered table has none — callers re-declare them after
    recovery. Every mutating operation keeps declared indexes exact. *)

val create_index : t -> string -> unit
(** Declare (and immediately build) a hash index on a column. Idempotent
    when the index already exists.
    @raise Schema_error if the column is unknown. *)

val drop_index : t -> string -> unit
(** Remove the index on a column, if any.
    @raise Schema_error if the column is unknown. *)

val has_index : t -> string -> bool

val indexed_columns : t -> string list
(** Columns with an index, in declaration order. *)

val index_lookup : t -> string -> Value.t -> row list option
(** [index_lookup t col v] is [Some rows] — the exact set of rows whose
    [col] field equals [v] under the query layer's numeric-coercing
    equality, in insertion order — when [col] has an index and the
    lookup key can model that equality; [None] when there is no index
    on [col] or the literal cannot be hashed faithfully (the caller
    must fall back to a scan). The arrays are copies. Every answered
    lookup bumps the index's [reldb.index.<table>.<col>.hits] counter. *)

val probe_estimate :
  t -> string -> Value.t -> [ `Stats of int | `Bucket of int ] option
(** How many rows [index_lookup t col v] would return, without copying
    (or, with statistics, even touching) the bucket. [`Stats n] is the
    rows/distinct estimate from the last {!analyze}; [`Bucket n] is the
    exact bucket length when no statistics exist. [None] exactly when
    {!index_lookup} would return [None]. Does not count as an index
    hit. *)

(** {2 Statistics}

    Optimizer statistics, in the spirit of [ANALYZE]: a per-table
    snapshot of row count and per-column distinct count, min/max, and
    null fraction ("null" meaning NaN floats and empty strings — the
    schema has no NULL). Like indexes they are derived, in-memory
    state: never journaled or persisted, absent on a freshly recovered
    table until somebody runs {!analyze} again. They are consulted by
    the query planner ({!Query.select_table}) when choosing among
    candidate equality indexes. *)

type col_stats = {
  cs_column : string;
  cs_distinct : int;        (** distinct values actually present *)
  cs_null_frac : float;     (** fraction of NaN / empty-string fields *)
  cs_min : Value.t option;  (** [None] on an empty table *)
  cs_max : Value.t option;
}

type stats = {
  st_rows : int;
  st_cols : col_stats list;  (** in schema column order *)
}

val analyze : t -> stats
(** Compute fresh statistics over the current rows and install them on
    the table (one O(rows x cols) pass). *)

val stats : t -> stats option
(** The snapshot installed by the last {!analyze}, if any. Statistics
    go stale silently as the table mutates — they are estimates, and
    the planner only uses them to rank candidate buckets, never to
    decide membership. *)

val clear_stats : t -> unit

val copy : t -> t
(** Deep copy (used by transaction snapshots). *)

val restore : t -> from:t -> unit
(** Overwrite the contents of a table with those of a snapshot that has
    the same schema. *)
