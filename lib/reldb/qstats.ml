(* A pg_stat_statements-style aggregator: per-fingerprint statement
   statistics, process-wide.

   The SQL layer normalizes each statement to a fingerprint (literals
   become [?], whitespace collapses, keywords lowercase) and records
   one observation per execution. The table is bounded: at [cap]
   distinct fingerprints the least-called entry is evicted to admit a
   new one, so a workload of unbounded distinct statements (which
   normalization is designed to prevent, but hostile input can force)
   degrades to rotating the long tail instead of growing without
   bound.

   State is global on purpose — like the {!Icdb_obs.Metrics} registry,
   a process has one statement-stats plane regardless of how many [Db]
   values it holds — and mutex-guarded because the server's workers
   record from many threads. *)

type entry = {
  qs_fingerprint : string;
  qs_plan : string;  (* plan summary of the most recent execution *)
  qs_calls : int;
  qs_rows : int;
  qs_total_s : float;
  qs_max_s : float;
}

type cell = {
  mutable c_plan : string;
  mutable c_calls : int;
  mutable c_rows : int;
  mutable c_total_s : float;
  mutable c_max_s : float;
}

let cap = 512
let lock = Mutex.create ()
let table : (string, cell) Hashtbl.t = Hashtbl.create 256

let c_evicted = lazy (Icdb_obs.Metrics.counter "reldb.qstats.evicted")

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Drop the least-called fingerprint (ties broken by fingerprint order
   so eviction is deterministic). Called with the lock held. *)
let evict_one () =
  let victim =
    Hashtbl.fold
      (fun fp cell acc ->
        match acc with
        | Some (best_fp, best) when
            best.c_calls < cell.c_calls
            || (best.c_calls = cell.c_calls
                && String.compare best_fp fp <= 0) ->
            acc
        | _ -> Some (fp, cell))
      table None
  in
  match victim with
  | Some (fp, _) ->
      Hashtbl.remove table fp;
      Icdb_obs.Metrics.incr (Lazy.force c_evicted)
  | None -> ()

let record ~fingerprint ~plan ~rows ~seconds =
  locked (fun () ->
      match Hashtbl.find_opt table fingerprint with
      | Some c ->
          c.c_plan <- plan;
          c.c_calls <- c.c_calls + 1;
          c.c_rows <- c.c_rows + rows;
          c.c_total_s <- c.c_total_s +. seconds;
          if seconds > c.c_max_s then c.c_max_s <- seconds
      | None ->
          if Hashtbl.length table >= cap then evict_one ();
          Hashtbl.add table fingerprint
            { c_plan = plan; c_calls = 1; c_rows = rows;
              c_total_s = seconds; c_max_s = seconds })

(* Sorted most-called first (total time as tiebreak, then fingerprint)
   so every rendering — QUERY STATS, /queryz — is deterministic for a
   given set of observations. *)
let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun fp c acc ->
          { qs_fingerprint = fp; qs_plan = c.c_plan; qs_calls = c.c_calls;
            qs_rows = c.c_rows; qs_total_s = c.c_total_s;
            qs_max_s = c.c_max_s }
          :: acc)
        table []
      |> List.sort (fun a b ->
             let c = Int.compare b.qs_calls a.qs_calls in
             if c <> 0 then c
             else
               let c = Float.compare b.qs_total_s a.qs_total_s in
               if c <> 0 then c
               else String.compare a.qs_fingerprint b.qs_fingerprint))

let reset () =
  locked (fun () ->
      let n = Hashtbl.length table in
      Hashtbl.reset table;
      n)
