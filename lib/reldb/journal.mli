(** Write-ahead journal for {!Db} — the durability the paper gets for
    free from INGRES (§2.3).

    Each mutating operation is appended as a typed, CRC-32-checksummed,
    line-oriented record. Recovery replays the longest valid prefix and
    truncates torn or corrupt tails, so a crash at any point loses at
    most the operation in flight. *)

type entry =
  | Create of string * (string * Value.ty) list  (** create table *)
  | Drop of string                               (** drop table *)
  | Insert of string * Value.t list              (** insert row *)
  | Delete of string * Value.t list              (** delete one row *)
  | Tx_begin of string   (** App B §7 transaction opened *)
  | Tx_commit of string  (** App B §7 transaction committed *)

exception Journal_error of string

type t

val append_hook : (unit -> unit) ref
(** Fired before each append. The fault-injection harness
    ([Icdb.Faultinject]) points this at its journal-append site so tests
    can kill the server between the in-memory mutation and the log
    write. *)

val stream_hook : (unit -> unit) ref
(** Fired at the top of each {!stream_from}; wired to the
    [journal_stream] fault-injection site. *)

val open_append : string -> t
(** Open (creating if needed) a journal for appending. The replication
    cursor is restored from the ["<path>.seq"] sidecar (base sequence)
    plus a count of the valid records already in the file. *)

val path : t -> string

(** {1 Record-sequence cursor}

    Every record carries an implicit monotonic sequence number, starting
    at 0 and surviving checkpoint truncations: {!reset} advances the
    persisted base instead of restarting the numbering, so a replication
    cursor taken before a truncation is recognisably stale (below
    {!base_seq}) rather than silently ambiguous. *)

val base_seq : t -> int
(** Sequence number of the first record currently in the file — the
    oldest record {!stream_from} can still serve. *)

val next_seq : t -> int
(** Sequence number the next {!append} will get; equivalently, one past
    the last record in the file. *)

val install_base : string -> int -> unit
(** [install_base path seq] seeds a journal that does not exist yet: it
    writes the sequence sidecar and an empty journal file so the next
    {!open_append} numbers records from [seq]. A follower installing a
    checkpoint fetched at cursor [seq] uses this to keep its local
    journal in sequence lockstep with the primary's. *)

val append : t -> entry -> unit
(** Append one record and flush it. *)

val close : t -> unit

val reset : t -> unit
(** Truncate the journal to empty (after a snapshot checkpoint has
    absorbed every journaled operation). Advances and persists
    {!base_seq} to {!next_seq} first, so sequence numbers stay
    monotonic across the truncation. *)

val replay : string -> entry list * bool
(** [replay path] is the longest valid record prefix of the journal,
    plus [true] when a torn or corrupt tail was found after it. A
    missing file reads as empty. *)

val rewrite : string -> entry list -> unit
(** Atomically rewrite the journal to contain exactly the given entries
    (recovery uses this to drop torn tails and uncommitted
    transactions). The sequence base is unchanged: rewrite only ever
    drops a tail, so the surviving prefix keeps its numbering. *)

(** {1 Replication tail reads} *)

type stream = {
  st_first : int;        (** sequence number of the first entry *)
  st_entries : entry list;
  st_torn : bool;        (** a torn/corrupt final record was cut — the
                             publisher reports it and retries; only
                             recovery truncates the file itself *)
}

val stream_from : t -> seq:int -> ?max_records:int -> unit -> stream
(** [stream_from t ~seq ()] reads the records from global sequence
    [seq] (inclusive) to the end of the journal, at most [max_records]
    of them. Tolerates a torn final record the same way {!replay} does:
    the stream stops at the longest valid prefix and sets [st_torn] —
    an append racing the read looks torn for one poll and is picked up
    whole on the next.
    @raise Journal_error when [seq] is outside [[base_seq, next_seq]] —
    the caller's cursor predates the last truncation (serve a full
    checkpoint instead) or comes from a diverged future. *)

val encode_line : entry -> string
(** The exact on-disk encoding of one record, checksum included — also
    the wire encoding replication ships, so followers re-verify the
    CRC end to end. *)

val decode_line : string -> entry option
(** [None] for a torn or corrupt line. *)

(**/**)

val crc32 : string -> int32
(** Exposed for tests. *)
