(** Write-ahead journal for {!Db} — the durability the paper gets for
    free from INGRES (§2.3).

    Each mutating operation is appended as a typed, CRC-32-checksummed,
    line-oriented record. Recovery replays the longest valid prefix and
    truncates torn or corrupt tails, so a crash at any point loses at
    most the operation in flight. *)

type entry =
  | Create of string * (string * Value.ty) list  (** create table *)
  | Drop of string                               (** drop table *)
  | Insert of string * Value.t list              (** insert row *)
  | Delete of string * Value.t list              (** delete one row *)
  | Tx_begin of string   (** App B §7 transaction opened *)
  | Tx_commit of string  (** App B §7 transaction committed *)

exception Journal_error of string

type t

val append_hook : (unit -> unit) ref
(** Fired before each append. The fault-injection harness
    ([Icdb.Faultinject]) points this at its journal-append site so tests
    can kill the server between the in-memory mutation and the log
    write. *)

val open_append : string -> t
(** Open (creating if needed) a journal for appending. *)

val path : t -> string

val append : t -> entry -> unit
(** Append one record and flush it. *)

val close : t -> unit

val reset : t -> unit
(** Truncate the journal to empty (after a snapshot checkpoint has
    absorbed every journaled operation). *)

val replay : string -> entry list * bool
(** [replay path] is the longest valid record prefix of the journal,
    plus [true] when a torn or corrupt tail was found after it. A
    missing file reads as empty. *)

val rewrite : string -> entry list -> unit
(** Atomically rewrite the journal to contain exactly the given entries
    (recovery uses this to drop torn tails and uncommitted
    transactions). *)

(**/**)

val crc32 : string -> int32
(** Exposed for tests. *)
