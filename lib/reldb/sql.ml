type result =
  | Relation of Query.rel
  | Affected of int

exception Sql_error of string

let sql_err fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Word of string   (* keyword or identifier; keywords matched case-insensitively *)
  | Str_lit of string
  | Num of string
  | Punct of char    (* ( ) , *  *)
  | Op of string     (* = != <> < <= > >= *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let rec loop i =
    if i >= n then ()
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '(' | ')' | ',' | '*' -> push (Punct s.[i]); loop (i + 1)
      | '\'' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then sql_err "unterminated string literal"
            else if s.[j] = '\'' then
              (* '' inside a literal is an escaped quote *)
              if j + 1 < n && s.[j + 1] = '\'' then begin
                Buffer.add_char buf '\'';
                str (j + 2)
              end
              else j + 1
            else begin
              Buffer.add_char buf s.[j];
              str (j + 1)
            end
          in
          let j = str (i + 1) in
          push (Str_lit (Buffer.contents buf));
          loop j
      | '=' -> push (Op "="); loop (i + 1)
      | '!' when i + 1 < n && s.[i + 1] = '=' -> push (Op "!="); loop (i + 2)
      | '<' when i + 1 < n && s.[i + 1] = '>' -> push (Op "!="); loop (i + 2)
      | '<' when i + 1 < n && s.[i + 1] = '=' -> push (Op "<="); loop (i + 2)
      | '<' -> push (Op "<"); loop (i + 1)
      | '>' when i + 1 < n && s.[i + 1] = '=' -> push (Op ">="); loop (i + 2)
      | '>' -> push (Op ">"); loop (i + 1)
      | c when (c >= '0' && c <= '9') || c = '-' || c = '.' ->
          let j = ref i in
          incr j;
          while !j < n && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.'
                           || s.[!j] = 'e' || s.[!j] = 'E' || s.[!j] = '-')
          do incr j done;
          push (Num (String.sub s i (!j - i)));
          loop !j
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do incr j done;
          push (Word (String.sub s i (!j - i)));
          loop !j
      | c -> sql_err "unexpected character %c" c
  in
  loop 0;
  List.rev !toks

let kw_eq w kw = String.lowercase_ascii w = kw

(* ------------------------------------------------------------------ *)
(* Literal quoting                                                     *)
(* ------------------------------------------------------------------ *)

(* Every statement assembled with Printf.sprintf must pass dynamic
   strings through here: embedded quotes are doubled so the value can
   never escape the literal and splice into the statement. *)
let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

(* A typed value as a SQL literal. *)
let quote = function
  | Value.Str s -> quote_string s
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Bool b -> string_of_bool b

(* ------------------------------------------------------------------ *)
(* Statement fingerprints                                              *)
(* ------------------------------------------------------------------ *)

(* pg_stat_statements-style normalization over the token stream:
   keywords and identifiers lowercase, every literal replaced by [?],
   whitespace canonicalized — so "SELECT x FROM t WHERE id = 3" and
   "select x from t where id=4" share one fingerprint. *)
let fingerprint_of_tokens toks =
  String.concat " "
    (List.map
       (function
         | Word w -> String.lowercase_ascii w
         | Str_lit _ | Num _ -> "?"
         | Punct c -> String.make 1 c
         | Op o -> o)
       toks)

let fingerprint stmt =
  match tokenize stmt with
  | toks -> fingerprint_of_tokens toks
  | exception Sql_error _ -> String.trim stmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_literal = function
  | Str_lit s :: rest -> (Value.Str s, rest)
  | Num n :: rest ->
      let v =
        if String.contains n '.' || String.contains n 'e'
           || String.contains n 'E'
        then Value.Float (float_of_string n)
        else Value.Int (int_of_string n)
      in
      (v, rest)
  | Word w :: rest when kw_eq w "true" -> (Value.Bool true, rest)
  | Word w :: rest when kw_eq w "false" -> (Value.Bool false, rest)
  | _ -> sql_err "expected a literal"

let rec parse_or toks =
  let left, toks = parse_and toks in
  match toks with
  | Word w :: rest when kw_eq w "or" ->
      let right, rest = parse_or rest in
      (Query.Or (left, right), rest)
  | _ -> (left, toks)

and parse_and toks =
  let left, toks = parse_not toks in
  match toks with
  | Word w :: rest when kw_eq w "and" ->
      let right, rest = parse_and rest in
      (Query.And (left, right), rest)
  | _ -> (left, toks)

and parse_not = function
  | Word w :: rest when kw_eq w "not" ->
      let p, rest = parse_not rest in
      (Query.Not p, rest)
  | Punct '(' :: rest -> (
      let p, rest = parse_or rest in
      match rest with
      | Punct ')' :: rest -> (p, rest)
      | _ -> sql_err "expected )")
  | Word col :: Op op :: rest ->
      let lit, rest = parse_literal rest in
      let atom =
        match op with
        | "=" -> Query.Eq (col, lit)
        | "!=" -> Query.Neq (col, lit)
        | "<" -> Query.Lt (col, lit)
        | "<=" -> Query.Le (col, lit)
        | ">" -> Query.Gt (col, lit)
        | ">=" -> Query.Ge (col, lit)
        | op -> sql_err "unknown operator %s" op
      in
      (atom, rest)
  | Word col :: Word w :: rest when kw_eq w "like" -> (
      match rest with
      | Str_lit pat :: rest -> (Query.Like (col, pat), rest)
      | _ -> sql_err "LIKE expects a string literal")
  | _ -> sql_err "malformed condition"

let parse_where toks =
  match toks with
  | Word w :: rest when kw_eq w "where" -> parse_or rest
  | _ -> (Query.True, toks)

let rec parse_column_list acc = function
  | Word col :: Punct ',' :: rest -> parse_column_list (col :: acc) rest
  | Word col :: rest -> (List.rev (col :: acc), rest)
  | _ -> sql_err "expected a column name"

(* A parsed read query — the shared description SELECT and
   PARETO/DOMINATED compile to, and the unit the planner works on. *)
type qshape =
  | Q_select of string list option  (* projection; None = * *)
  | Q_frontier of [ `Pareto | `Dominated ] * string * string

type qdesc = {
  q_shape : qshape;
  q_table : string;
  q_pred : Query.pred;
  q_order : (string * bool) option;  (* column, DESC? *)
  q_limit : int option;
}

let parse_limit toks =
  match toks with
  | Word l :: Num n :: rest when kw_eq l "limit" ->
      (Some (int_of_string n), rest)
  | _ -> (None, toks)

(* After the SELECT keyword. *)
let parse_select rest =
  let cols, rest =
    match rest with
    | Punct '*' :: rest -> (None, rest)
    | rest ->
        let cols, rest = parse_column_list [] rest in
        (Some cols, rest)
  in
  match rest with
  | Word f :: Word tbl :: rest when kw_eq f "from" ->
      let pred, rest = parse_where rest in
      let order, rest =
        match rest with
        | Word o :: Word b :: Word col :: rest
          when kw_eq o "order" && kw_eq b "by" -> (
            match rest with
            | Word d :: rest when kw_eq d "desc" -> (Some (col, true), rest)
            | rest -> (Some (col, false), rest))
        | rest -> (None, rest)
      in
      let lim, rest = parse_limit rest in
      if rest <> [] then sql_err "trailing tokens after SELECT";
      { q_shape = Q_select cols; q_table = tbl; q_pred = pred;
        q_order = order; q_limit = lim }
  | _ -> sql_err "expected FROM <table>"

(* After the PARETO / DOMINATED keyword. *)
let parse_frontier kind rest =
  let kname = match kind with `Pareto -> "PARETO" | `Dominated -> "DOMINATED" in
  match rest with
  | Word tbl :: Word o :: rest when kw_eq o "on" -> (
      match rest with
      | Word colx :: Punct ',' :: Word coly :: rest ->
          let pred, rest = parse_where rest in
          let lim, rest = parse_limit rest in
          if rest <> [] then sql_err "trailing tokens after %s" kname;
          { q_shape = Q_frontier (kind, colx, coly); q_table = tbl;
            q_pred = pred; q_order = None; q_limit = lim }
      | _ -> sql_err "expected <colx>, <coly> after %s <table> ON" kname)
  | _ -> sql_err "expected %s <table> ON <colx>, <coly>" kname

(* ------------------------------------------------------------------ *)
(* Planning and execution of read queries                              *)
(* ------------------------------------------------------------------ *)

(* Compile a query description against a table: the plan value EXPLAIN
   renders, the access decision, and the post-access stages in
   execution order, each paired with its plan step so EXPLAIN ANALYZE
   can attach per-step actuals. Building a plan reads no rows and bumps
   no counters. *)
let build_query tbl q =
  let tname = Table.name tbl in
  (* validate every referenced column against the schema up front:
     EXPLAIN never reads rows, but a typo'd column — in the predicate,
     projection, ORDER BY, or frontier axes — must still be an error,
     not a plausible-looking plan *)
  let empty =
    { Query.rname = tname; rschema = Table.schema tbl; rrows = [] }
  in
  Query.validate_pred empty q.q_pred;
  let check col = ignore (Query.col_index empty col) in
  (match q.q_shape with
  | Q_select (Some cols) -> List.iter check cols
  | Q_frontier (_, x, y) -> check x; check y
  | Q_select None -> ());
  (match q.q_order with Some (col, _) -> check col | None -> ());
  let access = Query.plan_access tbl q.q_pred in
  let access_step, kind, column =
    match access with
    | Query.Probe { ap_col; ap_value; ap_est; ap_stats } ->
        ( Plan.step
            ~detail:
              (Printf.sprintf "%s = %s (est %d rows via %s)" ap_col
                 (quote ap_value) ap_est
                 (if ap_stats then "stats" else "bucket"))
            (Printf.sprintf "Index Probe on %s" tname),
          `Indexed, Some ap_col )
    | Query.Scan ->
        (Plan.step (Printf.sprintf "Seq Scan on %s" tname), `Scan, None)
  in
  let rev_stages = ref [] in
  let add step f = rev_stages := (step, f) :: !rev_stages in
  (match q.q_pred with
  | Query.True -> ()
  | p -> add (Plan.step "Filter" ~detail:(Query.pred_to_string p))
           (Query.select p));
  (match q.q_shape with
  | Q_frontier (`Pareto, x, y) ->
      add (Plan.step "Pareto Frontier"
             ~detail:(Printf.sprintf "minimize (%s, %s)" x y))
        (Query.pareto ~x ~y)
  | Q_frontier (`Dominated, x, y) ->
      add (Plan.step "Dominated Set"
             ~detail:(Printf.sprintf "minimize (%s, %s)" x y))
        (Query.dominated ~x ~y)
  | Q_select _ -> ());
  (match q.q_order with
  | Some (col, desc) ->
      add (Plan.step "Sort" ~detail:(if desc then col ^ " DESC" else col))
        (fun rel -> Query.order_by col ~desc rel)
  | None -> ());
  (match q.q_limit with
  | Some n -> add (Plan.step "Limit" ~detail:(string_of_int n))
                (Query.limit n)
  | None -> ());
  (* Project last so ORDER BY may reference unselected columns. *)
  (match q.q_shape with
  | Q_select (Some cols) ->
      add (Plan.step "Project" ~detail:(String.concat ", " cols))
        (Query.project cols)
  | Q_select None | Q_frontier _ -> ());
  let stages = List.rev !rev_stages in
  let plan =
    { Plan.p_table = tname; p_kind = kind; p_column = column;
      p_steps = access_step :: List.map fst stages }
  in
  (plan, access, access_step, stages)

let ms_between t0 t1 = float_of_int (t1 - t0) *. 1e-6

(* Execute a query description. [timed] is EXPLAIN ANALYZE: each plan
   step additionally gets actual rows in/out and wall time (which costs
   a couple of clock reads and row counts per step — plain execution
   pays none of it). *)
let run_query db q ~timed =
  let tbl = Db.table db q.q_table in
  let plan, access, access_step, stages = build_query tbl q in
  if timed then begin
    (* thread each stage's output count into the next stage's input so a
       row list is only ever counted once *)
    let t0 = Icdb_obs.Clock.now_ns () in
    let rel0 = Query.run_access tbl q.q_pred access in
    let t1 = Icdb_obs.Clock.now_ns () in
    (* a scan's output is the whole table, so its count is O(1); only a
       probe's bucket needs measuring *)
    let n0 =
      match access with
      | Query.Scan -> Table.cardinality tbl
      | Query.Probe _ -> Query.count rel0
    in
    Plan.actuals access_step ~rows_in:(Table.cardinality tbl) ~rows_out:n0
      ~ms:(ms_between t0 t1);
    let rel, _ =
      List.fold_left
        (fun (rel, n_in) (step, f) ->
          let t0 = Icdb_obs.Clock.now_ns () in
          let out = f rel in
          let t1 = Icdb_obs.Clock.now_ns () in
          let n_out = Query.count out in
          Plan.actuals step ~rows_in:n_in ~rows_out:n_out
            ~ms:(ms_between t0 t1);
          (out, n_out))
        (rel0, n0) stages
    in
    (rel, plan)
  end
  else
    let rel =
      List.fold_left
        (fun rel (_, f) -> f rel)
        (Query.run_access tbl q.q_pred access)
        stages
    in
    (rel, plan)

(* The EXPLAIN result relation: one [plan] column, one row per rendered
   plan line. *)
let explain_rel plan =
  { Query.rname = "explain";
    rschema = [ ("plan", Value.Tstr) ];
    rrows = List.map (fun l -> [| Value.Str l |]) (Plan.render plan) }

let query_stats_rel () =
  let entries = Qstats.snapshot () in
  { Query.rname = "query_stats";
    rschema =
      [ ("fingerprint", Value.Tstr); ("plan", Value.Tstr);
        ("calls", Value.Tint); ("rows", Value.Tint);
        ("total_ms", Value.Tfloat); ("max_ms", Value.Tfloat) ];
    rrows =
      List.map
        (fun e ->
          [| Value.Str e.Qstats.qs_fingerprint; Value.Str e.Qstats.qs_plan;
             Value.Int e.Qstats.qs_calls; Value.Int e.Qstats.qs_rows;
             Value.Float (e.Qstats.qs_total_s *. 1e3);
             Value.Float (e.Qstats.qs_max_s *. 1e3) |])
        entries }

(* ------------------------------------------------------------------ *)
(* Statement dispatch                                                  *)
(* ------------------------------------------------------------------ *)

let parse_query = function
  | Word w :: rest when kw_eq w "select" -> parse_select rest
  | Word w :: rest when kw_eq w "pareto" -> parse_frontier `Pareto rest
  | Word w :: rest when kw_eq w "dominated" -> parse_frontier `Dominated rest
  | _ -> sql_err "EXPLAIN supports SELECT, PARETO and DOMINATED"

(* Run one tokenized statement. Returns the result, the executed
   query's plan (when there is one), the plan label for the statement
   stats, and whether the statement should be recorded there at all
   (QUERY STATS itself is not, so inspecting the stats plane does not
   pollute it). *)
let exec_toks db toks =
  match toks with
  | Word w :: rest when kw_eq w "explain" -> (
      let analyze, rest =
        match rest with
        | Word a :: rest' when kw_eq a "analyze" -> (true, rest')
        | _ -> (false, rest)
      in
      let q = parse_query rest in
      if analyze then begin
        (* Execute for real — counters, timings and row counts are the
           point — but return the annotated plan, not the rows. *)
        let _rel, plan = run_query db q ~timed:true in
        (Relation (explain_rel plan), Some plan, Plan.summary plan, true)
      end
      else
        let tbl = Db.table db q.q_table in
        let plan, _, _, _ = build_query tbl q in
        (Relation (explain_rel plan), Some plan, "explain", true))
  | Word w :: rest when kw_eq w "analyze" ->
      let tables =
        match rest with
        | [] -> Db.table_names db
        | [ Word tbl ] -> [ tbl ]
        | _ -> sql_err "expected ANALYZE [table]"
      in
      List.iter (fun name -> ignore (Table.analyze (Db.table db name))) tables;
      (Affected (List.length tables), None, "ddl", true)
  | Word q :: Word s :: rest when kw_eq q "query" && kw_eq s "stats" -> (
      match rest with
      | [] -> (Relation (query_stats_rel ()), None, "", false)
      | [ Word r ] when kw_eq r "reset" ->
          (Affected (Qstats.reset ()), None, "", false)
      | _ -> sql_err "expected QUERY STATS [RESET]")
  | Word w :: rest when kw_eq w "select" ->
      let q = parse_select rest in
      let rel, plan = run_query db q ~timed:false in
      (Relation rel, Some plan, Plan.summary plan, true)
  | Word w :: rest when kw_eq w "pareto" || kw_eq w "dominated" ->
      let kind = if kw_eq w "pareto" then `Pareto else `Dominated in
      let q = parse_frontier kind rest in
      let rel, plan = run_query db q ~timed:false in
      (Relation rel, Some plan, Plan.summary plan, true)
  | Word w :: Word i :: Word tbl_name :: rest
    when kw_eq w "insert" && kw_eq i "into" -> (
      let tbl = Db.table db tbl_name in
      match rest with
      | Word v :: Punct '(' :: rest when kw_eq v "values" ->
          let rec values acc rest =
            let lit, rest = parse_literal rest in
            match rest with
            | Punct ',' :: rest -> values (lit :: acc) rest
            | Punct ')' :: rest -> (List.rev (lit :: acc), rest)
            | _ -> sql_err "expected , or ) in VALUES"
          in
          let vals, rest = values [] rest in
          if rest <> [] then sql_err "trailing tokens after INSERT";
          Table.insert tbl vals;
          (Affected 1, None, "write", true)
      | _ -> sql_err "expected VALUES (...)")
  | Word w :: Word tbl_name :: Word s :: rest
    when kw_eq w "update" && kw_eq s "set" ->
      let tbl = Db.table db tbl_name in
      let rec assigns acc = function
        | Word col :: Op "=" :: rest ->
            let lit, rest = parse_literal rest in
            let acc = (col, lit) :: acc in
            (match rest with
             | Punct ',' :: rest -> assigns acc rest
             | rest -> (List.rev acc, rest))
        | _ -> sql_err "expected col = literal in SET"
      in
      let sets, rest = assigns [] rest in
      let pred, rest = parse_where rest in
      if rest <> [] then sql_err "trailing tokens after UPDATE";
      let rel = Query.of_table tbl in
      Query.validate_pred rel pred;
      let n = Table.update tbl (Query.eval_pred rel pred) (fun _ -> sets) in
      (Affected n, None, "write", true)
  | Word w :: Word f :: Word tbl_name :: rest
    when kw_eq w "delete" && kw_eq f "from" ->
      let tbl = Db.table db tbl_name in
      let pred, rest = parse_where rest in
      if rest <> [] then sql_err "trailing tokens after DELETE";
      let rel = Query.of_table tbl in
      Query.validate_pred rel pred;
      let n = Table.delete tbl (Query.eval_pred rel pred) in
      (Affected n, None, "write", true)
  | Word w :: Word i :: Word o :: Word tbl_name :: rest
    when kw_eq w "create" && kw_eq i "index" && kw_eq o "on" -> (
      let tbl = Db.table db tbl_name in
      match rest with
      | Punct '(' :: Word col :: Punct ')' :: [] ->
          Table.create_index tbl col;
          (Affected 0, None, "ddl", true)
      | _ -> sql_err "expected (column) after CREATE INDEX ON <table>")
  | Word w :: Word i :: Word o :: Word tbl_name :: rest
    when kw_eq w "drop" && kw_eq i "index" && kw_eq o "on" -> (
      let tbl = Db.table db tbl_name in
      match rest with
      | Punct '(' :: Word col :: Punct ')' :: [] ->
          Table.drop_index tbl col;
          (Affected 0, None, "ddl", true)
      | _ -> sql_err "expected (column) after DROP INDEX ON <table>")
  | _ -> sql_err "unsupported statement"

let exec_explained db stmt =
  let toks = tokenize stmt in
  let t0 = Icdb_obs.Clock.now_ns () in
  let result, plan, qplan, record = exec_toks db toks in
  let t1 = Icdb_obs.Clock.now_ns () in
  if record then begin
    let rows =
      match result with Relation r -> Query.count r | Affected n -> n
    in
    Qstats.record ~fingerprint:(fingerprint_of_tokens toks) ~plan:qplan
      ~rows ~seconds:(Icdb_obs.Clock.ns_to_s (t1 - t0))
  end;
  (result, plan)

let exec db stmt = fst (exec_explained db stmt)

let select db stmt =
  match exec db stmt with
  | Relation rel -> rel
  | Affected _ -> sql_err "expected a SELECT statement"
