type result =
  | Relation of Query.rel
  | Affected of int

exception Sql_error of string

let sql_err fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Word of string   (* keyword or identifier; keywords matched case-insensitively *)
  | Str_lit of string
  | Num of string
  | Punct of char    (* ( ) , *  *)
  | Op of string     (* = != <> < <= > >= *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let rec loop i =
    if i >= n then ()
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '(' | ')' | ',' | '*' -> push (Punct s.[i]); loop (i + 1)
      | '\'' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then sql_err "unterminated string literal"
            else if s.[j] = '\'' then
              (* '' inside a literal is an escaped quote *)
              if j + 1 < n && s.[j + 1] = '\'' then begin
                Buffer.add_char buf '\'';
                str (j + 2)
              end
              else j + 1
            else begin
              Buffer.add_char buf s.[j];
              str (j + 1)
            end
          in
          let j = str (i + 1) in
          push (Str_lit (Buffer.contents buf));
          loop j
      | '=' -> push (Op "="); loop (i + 1)
      | '!' when i + 1 < n && s.[i + 1] = '=' -> push (Op "!="); loop (i + 2)
      | '<' when i + 1 < n && s.[i + 1] = '>' -> push (Op "!="); loop (i + 2)
      | '<' when i + 1 < n && s.[i + 1] = '=' -> push (Op "<="); loop (i + 2)
      | '<' -> push (Op "<"); loop (i + 1)
      | '>' when i + 1 < n && s.[i + 1] = '=' -> push (Op ">="); loop (i + 2)
      | '>' -> push (Op ">"); loop (i + 1)
      | c when (c >= '0' && c <= '9') || c = '-' || c = '.' ->
          let j = ref i in
          incr j;
          while !j < n && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.'
                           || s.[!j] = 'e' || s.[!j] = 'E' || s.[!j] = '-')
          do incr j done;
          push (Num (String.sub s i (!j - i)));
          loop !j
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do incr j done;
          push (Word (String.sub s i (!j - i)));
          loop !j
      | c -> sql_err "unexpected character %c" c
  in
  loop 0;
  List.rev !toks

let kw_eq w kw = String.lowercase_ascii w = kw

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_literal = function
  | Str_lit s :: rest -> (Value.Str s, rest)
  | Num n :: rest ->
      let v =
        if String.contains n '.' || String.contains n 'e'
           || String.contains n 'E'
        then Value.Float (float_of_string n)
        else Value.Int (int_of_string n)
      in
      (v, rest)
  | Word w :: rest when kw_eq w "true" -> (Value.Bool true, rest)
  | Word w :: rest when kw_eq w "false" -> (Value.Bool false, rest)
  | _ -> sql_err "expected a literal"

let rec parse_or toks =
  let left, toks = parse_and toks in
  match toks with
  | Word w :: rest when kw_eq w "or" ->
      let right, rest = parse_or rest in
      (Query.Or (left, right), rest)
  | _ -> (left, toks)

and parse_and toks =
  let left, toks = parse_not toks in
  match toks with
  | Word w :: rest when kw_eq w "and" ->
      let right, rest = parse_and rest in
      (Query.And (left, right), rest)
  | _ -> (left, toks)

and parse_not = function
  | Word w :: rest when kw_eq w "not" ->
      let p, rest = parse_not rest in
      (Query.Not p, rest)
  | Punct '(' :: rest -> (
      let p, rest = parse_or rest in
      match rest with
      | Punct ')' :: rest -> (p, rest)
      | _ -> sql_err "expected )")
  | Word col :: Op op :: rest ->
      let lit, rest = parse_literal rest in
      let atom =
        match op with
        | "=" -> Query.Eq (col, lit)
        | "!=" -> Query.Neq (col, lit)
        | "<" -> Query.Lt (col, lit)
        | "<=" -> Query.Le (col, lit)
        | ">" -> Query.Gt (col, lit)
        | ">=" -> Query.Ge (col, lit)
        | op -> sql_err "unknown operator %s" op
      in
      (atom, rest)
  | Word col :: Word w :: rest when kw_eq w "like" -> (
      match rest with
      | Str_lit pat :: rest -> (Query.Like (col, pat), rest)
      | _ -> sql_err "LIKE expects a string literal")
  | _ -> sql_err "malformed condition"

let parse_where toks =
  match toks with
  | Word w :: rest when kw_eq w "where" -> parse_or rest
  | _ -> (Query.True, toks)

let rec parse_column_list acc = function
  | Word col :: Punct ',' :: rest -> parse_column_list (col :: acc) rest
  | Word col :: rest -> (List.rev (col :: acc), rest)
  | _ -> sql_err "expected a column name"

let exec db stmt =
  match tokenize stmt with
  | Word w :: rest when kw_eq w "select" -> (
      let cols, rest =
        match rest with
        | Punct '*' :: rest -> (None, rest)
        | rest ->
            let cols, rest = parse_column_list [] rest in
            (Some cols, rest)
      in
      match rest with
      | Word f :: Word tbl_name :: rest when kw_eq f "from" ->
          let tbl = Db.table db tbl_name in
          let pred, rest = parse_where rest in
          (* Pushdown: equality conjuncts probe declared indexes. *)
          let rel = Query.select_table tbl pred in
          let rel, rest =
            match rest with
            | Word o :: Word b :: Word col :: rest
              when kw_eq o "order" && kw_eq b "by" -> (
                match rest with
                | Word d :: rest when kw_eq d "desc" ->
                    (Query.order_by col ~desc:true rel, rest)
                | rest -> (Query.order_by col rel, rest))
            | rest -> (rel, rest)
          in
          let rel, rest =
            match rest with
            | Word l :: Num n :: rest when kw_eq l "limit" ->
                (Query.limit (int_of_string n) rel, rest)
            | rest -> (rel, rest)
          in
          if rest <> [] then sql_err "trailing tokens after SELECT";
          (* Project last so ORDER BY may reference unselected columns. *)
          let rel =
            match cols with Some cols -> Query.project cols rel | None -> rel
          in
          Relation rel
      | _ -> sql_err "expected FROM <table>")
  | Word w :: Word i :: Word tbl_name :: rest
    when kw_eq w "insert" && kw_eq i "into" -> (
      let tbl = Db.table db tbl_name in
      match rest with
      | Word v :: Punct '(' :: rest when kw_eq v "values" ->
          let rec values acc rest =
            let lit, rest = parse_literal rest in
            match rest with
            | Punct ',' :: rest -> values (lit :: acc) rest
            | Punct ')' :: rest -> (List.rev (lit :: acc), rest)
            | _ -> sql_err "expected , or ) in VALUES"
          in
          let vals, rest = values [] rest in
          if rest <> [] then sql_err "trailing tokens after INSERT";
          Table.insert tbl vals;
          Affected 1
      | _ -> sql_err "expected VALUES (...)")
  | Word w :: Word tbl_name :: Word s :: rest
    when kw_eq w "update" && kw_eq s "set" ->
      let tbl = Db.table db tbl_name in
      let rec assigns acc = function
        | Word col :: Op "=" :: rest ->
            let lit, rest = parse_literal rest in
            let acc = (col, lit) :: acc in
            (match rest with
             | Punct ',' :: rest -> assigns acc rest
             | rest -> (List.rev acc, rest))
        | _ -> sql_err "expected col = literal in SET"
      in
      let sets, rest = assigns [] rest in
      let pred, rest = parse_where rest in
      if rest <> [] then sql_err "trailing tokens after UPDATE";
      let rel = Query.of_table tbl in
      Query.validate_pred rel pred;
      let n = Table.update tbl (Query.eval_pred rel pred) (fun _ -> sets) in
      Affected n
  | Word w :: Word f :: Word tbl_name :: rest
    when kw_eq w "delete" && kw_eq f "from" ->
      let tbl = Db.table db tbl_name in
      let pred, rest = parse_where rest in
      if rest <> [] then sql_err "trailing tokens after DELETE";
      let rel = Query.of_table tbl in
      Query.validate_pred rel pred;
      let n = Table.delete tbl (Query.eval_pred rel pred) in
      Affected n
  | Word w :: Word i :: Word o :: Word tbl_name :: rest
    when kw_eq w "create" && kw_eq i "index" && kw_eq o "on" -> (
      let tbl = Db.table db tbl_name in
      match rest with
      | Punct '(' :: Word col :: Punct ')' :: [] ->
          Table.create_index tbl col;
          Affected 0
      | _ -> sql_err "expected (column) after CREATE INDEX ON <table>")
  | Word w :: Word i :: Word o :: Word tbl_name :: rest
    when kw_eq w "drop" && kw_eq i "index" && kw_eq o "on" -> (
      let tbl = Db.table db tbl_name in
      match rest with
      | Punct '(' :: Word col :: Punct ')' :: [] ->
          Table.drop_index tbl col;
          Affected 0
      | _ -> sql_err "expected (column) after DROP INDEX ON <table>")
  | Word w :: Word tbl_name :: Word o :: rest
    when (kw_eq w "pareto" || kw_eq w "dominated") && kw_eq o "on" -> (
      let tbl = Db.table db tbl_name in
      match rest with
      | Word colx :: Punct ',' :: Word coly :: rest ->
          let pred, rest = parse_where rest in
          let rel, rest =
            match rest with
            | Word l :: Num n :: rest when kw_eq l "limit" ->
                (* LIMIT applies after the frontier is computed. *)
                let rel = Query.select_table tbl pred in
                let rel =
                  if kw_eq w "pareto" then Query.pareto ~x:colx ~y:coly rel
                  else Query.dominated ~x:colx ~y:coly rel
                in
                (Query.limit (int_of_string n) rel, rest)
            | rest ->
                let rel = Query.select_table tbl pred in
                let rel =
                  if kw_eq w "pareto" then Query.pareto ~x:colx ~y:coly rel
                  else Query.dominated ~x:colx ~y:coly rel
                in
                (rel, rest)
          in
          if rest <> [] then
            sql_err "trailing tokens after %s" (String.uppercase_ascii w);
          Relation rel
      | _ -> sql_err "expected <colx>, <coly> after %s <table> ON"
               (String.uppercase_ascii w))
  | _ -> sql_err "unsupported statement"

let select db stmt =
  match exec db stmt with
  | Relation rel -> rel
  | Affected _ -> sql_err "expected a SELECT statement"

(* ------------------------------------------------------------------ *)
(* Literal quoting                                                     *)
(* ------------------------------------------------------------------ *)

(* Every statement assembled with Printf.sprintf must pass dynamic
   strings through here: embedded quotes are doubled so the value can
   never escape the literal and splice into the statement. *)
let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

(* A typed value as a SQL literal. *)
let quote = function
  | Value.Str s -> quote_string s
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Bool b -> string_of_bool b
