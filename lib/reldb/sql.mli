(** A small SQL subset, matching the paper's "ICDB uses SQL to query
    this data from INGRES" (§2.3).

    Supported statements:
    - [SELECT col, ... | * FROM table [WHERE cond] [ORDER BY col [DESC]] [LIMIT n]]
    - [INSERT INTO table VALUES (lit, ...)]
    - [UPDATE table SET col = lit, ... [WHERE cond]]
    - [DELETE FROM table [WHERE cond]]
    - [CREATE INDEX ON table (col)] / [DROP INDEX ON table (col)]
    - [PARETO table ON colx, coly [WHERE cond] [LIMIT n]] — rows on the
      area/delay-style Pareto frontier (both objectives minimized)
    - [DOMINATED table ON colx, coly [WHERE cond] [LIMIT n]] — the
      complement: rows strictly dominated by another row

    SELECT and PARETO/DOMINATED use equality-predicate pushdown: a
    top-level [col = literal] conjunct that hits an index declared with
    [CREATE INDEX] scans only that hash bucket, returning exactly the
    rows (and row order) of the full scan.

    Conditions combine [col op literal] atoms with [AND]/[OR]/[NOT] and
    parentheses; operators are [=], [!=], [<>], [<], [<=], [>], [>=] and
    [LIKE] (substring). Literals: integers, floats, ['strings'], [true],
    [false]. Keywords are case-insensitive. *)

type result =
  | Relation of Query.rel  (** from SELECT *)
  | Affected of int        (** rows touched by INSERT/UPDATE/DELETE *)

exception Sql_error of string

val exec : Db.t -> string -> result
(** Parse and run one statement. @raise Sql_error on syntax errors,
    [Db.Db_error] / [Table.Schema_error] on semantic ones. *)

val select : Db.t -> string -> Query.rel
(** Like {!exec} but requires a SELECT. @raise Sql_error otherwise. *)

val quote_string : string -> string
(** [quote_string s] is [s] as a SQL string literal, with embedded
    quotes doubled. Every statement assembled with [Printf.sprintf] must
    pass dynamic strings through this (or {!quote}) so a value can never
    escape its literal and splice into the statement. *)

val quote : Value.t -> string
(** A typed value as a SQL literal; strings go through
    {!quote_string}. *)
