(** A small SQL subset, matching the paper's "ICDB uses SQL to query
    this data from INGRES" (§2.3).

    Supported statements:
    - [SELECT col, ... | * FROM table [WHERE cond] [ORDER BY col [DESC]] [LIMIT n]]
    - [INSERT INTO table VALUES (lit, ...)]
    - [UPDATE table SET col = lit, ... [WHERE cond]]
    - [DELETE FROM table [WHERE cond]]
    - [CREATE INDEX ON table (col)] / [DROP INDEX ON table (col)]
    - [PARETO table ON colx, coly [WHERE cond] [LIMIT n]] — rows on the
      area/delay-style Pareto frontier (both objectives minimized)
    - [DOMINATED table ON colx, coly [WHERE cond] [LIMIT n]] — the
      complement: rows strictly dominated by another row
    - [EXPLAIN <query>] — the {!Plan} the planner chose for a SELECT /
      PARETO / DOMINATED, rendered one line per plan step, without
      executing it
    - [EXPLAIN ANALYZE <query>] — execute the query and render the plan
      with per-step actual rows in/out and wall time
    - [ANALYZE [table]] — collect optimizer statistics
      ({!Table.analyze}) for one table or every table; like indexes,
      statistics are derived state, re-collected after recovery
    - [QUERY STATS] — the pg_stat_statements-style per-fingerprint
      aggregation ({!Qstats}): fingerprint, plan, calls, rows,
      total_ms, max_ms; [QUERY STATS RESET] clears it

    SELECT and PARETO/DOMINATED use equality-predicate pushdown: a
    top-level [col = literal] conjunct that hits an index declared with
    [CREATE INDEX] scans only that hash bucket, returning exactly the
    rows (and row order) of the full scan. When several indexed
    equality conjuncts compete, the planner ranks them by
    {!Table.probe_estimate} — O(1) rows/distinct estimates once
    [ANALYZE] has run, exact bucket lengths otherwise.

    Conditions combine [col op literal] atoms with [AND]/[OR]/[NOT] and
    parentheses; operators are [=], [!=], [<>], [<], [<=], [>], [>=] and
    [LIKE] (substring). Literals: integers, floats, ['strings'], [true],
    [false]. Keywords are case-insensitive. *)

type result =
  | Relation of Query.rel  (** from SELECT *)
  | Affected of int        (** rows touched by INSERT/UPDATE/DELETE *)

exception Sql_error of string

val exec : Db.t -> string -> result
(** Parse and run one statement. @raise Sql_error on syntax errors,
    [Db.Db_error] / [Table.Schema_error] on semantic ones. Every
    successfully executed statement (except [QUERY STATS] itself) is
    folded into the {!Qstats} plane under its {!fingerprint}. *)

val exec_explained : Db.t -> string -> result * Plan.t option
(** Like {!exec} but also returns the plan of the executed read query,
    when the statement had one (SELECT / PARETO / DOMINATED, and both
    EXPLAIN forms). Write and DDL statements return [None]. Callers
    that surface plan summaries (slow-query log, traced spans) use
    this; {!exec} is [fun db s -> fst (exec_explained db s)]. *)

val select : Db.t -> string -> Query.rel
(** Like {!exec} but requires a SELECT. @raise Sql_error otherwise. *)

val fingerprint : string -> string
(** The statement's normalized form used as its {!Qstats} key: keywords
    and identifiers lowercased, literals replaced by [?], whitespace
    canonicalized. A statement that does not tokenize fingerprints as
    its trimmed text. *)

val quote_string : string -> string
(** [quote_string s] is [s] as a SQL string literal, with embedded
    quotes doubled. Every statement assembled with [Printf.sprintf] must
    pass dynamic strings through this (or {!quote}) so a value can never
    escape its literal and splice into the statement. *)

val quote : Value.t -> string
(** A typed value as a SQL literal; strings go through
    {!quote_string}. *)
