(** A pg_stat_statements-style statement-statistics plane.

    The SQL layer fingerprints each executed statement (literals
    normalized away) and records one observation per execution; this
    module aggregates them per fingerprint in a bounded, process-wide
    table. [QUERY STATS] and the [/queryz] admin endpoint render
    {!snapshot}. Thread-safe. *)

type entry = {
  qs_fingerprint : string;
  qs_plan : string;   (** plan summary of the most recent execution,
                          e.g. ["indexed(pts.grp)"], ["scan(pts)"],
                          ["write"], ["ddl"] *)
  qs_calls : int;
  qs_rows : int;      (** cumulative rows returned / affected *)
  qs_total_s : float; (** cumulative execution wall time *)
  qs_max_s : float;   (** slowest single execution *)
}

val cap : int
(** Maximum distinct fingerprints retained (512). Admitting a new
    fingerprint to a full table evicts the least-called entry and bumps
    the [reldb.qstats.evicted] counter. *)

val record :
  fingerprint:string -> plan:string -> rows:int -> seconds:float -> unit
(** Fold one execution into the table. *)

val snapshot : unit -> entry list
(** Consistent copy, sorted most-called first (total time, then
    fingerprint, as tiebreaks) — deterministic for a given set of
    observations. *)

val reset : unit -> int
(** Drop everything; returns how many entries were discarded
    ([QUERY STATS RESET]). *)
