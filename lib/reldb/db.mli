(** A database: a set of named tables with snapshot transactions and
    textual persistence.

    This plays the role INGRES plays in the paper (§2.3): ICDB metadata
    (component definitions, implementations, generators, instances)
    lives here, while bulk design data lives in ordinary files. *)

type t

exception Db_error of string

val create : unit -> t

val create_table : t -> string -> Table.schema -> Table.t
(** @raise Db_error if a table with that name exists. *)

val table : t -> string -> Table.t
(** @raise Db_error if absent. *)

val table_opt : t -> string -> Table.t option
val drop_table : t -> string -> unit
val table_names : t -> string list
(** Sorted list of table names. *)

(** {1 Write-ahead journaling}

    Once a journal is attached, every mutation made through the
    journaled operations ([create_table], [drop_table], [insert],
    [delete_where], the transaction marks) is logged before the caller
    regains control. Mutations made directly through {!Table} bypass the
    journal — durability-sensitive callers must go through this
    module. *)

val attach_journal : t -> Journal.t -> unit
val detach_journal : t -> unit
val journal : t -> Journal.t option

val insert : t -> string -> Value.t list -> unit
(** Journaled row insert. @raise Db_error / Table.Schema_error as the
    unjournaled operations do. *)

val delete_where : t -> string -> (Table.row -> bool) -> int
(** Journaled delete: each removed row is logged individually so replay
    can reproduce it exactly. Returns the number of rows removed. *)

val mark_tx_begin : t -> string -> unit
(** Journal an application-level (App B §7) transaction-begin mark.
    Entries recorded between an uncommitted begin and the end of the
    journal are rolled back by {!replay_journal}. No-op when no journal
    is attached. *)

val mark_tx_commit : t -> string -> unit

(** {1 Transactions}

    Snapshot-based: [begin_tx] snapshots every table; [rollback]
    restores the snapshots; [commit] discards them. Transactions nest
    by stacking snapshots. *)

val begin_tx : t -> unit
val commit : t -> unit
(** @raise Db_error when no transaction is active. *)

val rollback : t -> unit
(** @raise Db_error when no transaction is active. *)

val in_tx : t -> bool

val with_tx : t -> (unit -> 'a) -> 'a
(** Run a function inside a transaction; commit on return, roll back and
    re-raise on exception. *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** Write the whole database to one text file. *)

val load : string -> t
(** Read a database written by {!save}.
    @raise Db_error on malformed input. *)

(** {1 Crash recovery} *)

type replay_report = {
  rp_applied : int;                   (** entries re-applied *)
  rp_discarded : Journal.entry list;  (** uncommitted-transaction tail *)
  rp_torn : bool;                     (** a torn/corrupt tail was cut *)
}

val apply_entry : t -> Journal.entry -> unit
(** Apply one journal record directly to the tables, without logging it
    — what replay is built from, and what a replication follower uses
    to re-apply shipped records. Creates and drops are idempotent; a
    delete removes the first matching row. *)

val replay_journal : t -> journal_path:string -> replay_report
(** Replay the journal over a snapshot- or bootstrap-initialised
    database: apply the longest valid, committed prefix, roll back
    entries belonging to an uncommitted App B §7 transaction, and
    truncate the journal file to exactly what was applied. The journal
    must not be attached to [t] while replaying.
    @raise Db_error if a journal is attached. *)

val recover : ?snapshot:string -> journal_path:string -> unit -> t * replay_report
(** Load the last snapshot (or start empty when [snapshot] is absent or
    missing) and {!replay_journal} over it. The returned database has no
    journal attached; re-attach once ready to accept writes. *)

val checkpoint : t -> snapshot:string -> unit
(** Absorb the journal into a snapshot file (atomic rename), then
    truncate the attached journal (if any). *)
