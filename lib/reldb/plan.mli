(** An explicit query-plan value: what the planner decided, rendered by
    [EXPLAIN] and summarized on slow-log entries and traced spans.

    A plan is a linear pipeline of steps in execution order (one access
    step, then filter/frontier/order/limit/project decorators). The
    static text is fixed at plan time; [EXPLAIN ANALYZE] execution
    fills in per-step actuals ({!actuals}), which render as a trailing
    [(actual N -> M rows, X ms)] annotation. Rendering is deterministic
    — same plan, same text — so golden tests and CI greps can rely on
    it. *)

type step = {
  s_op : string;      (** operator name, e.g. ["Index Probe on pts"] *)
  s_detail : string;  (** operator-specific text, may be [""] *)
  mutable s_rows_in : int option;
  mutable s_rows_out : int option;
  mutable s_ms : float option;
}

type t = {
  p_table : string;
  p_kind : [ `Indexed | `Scan ];
  p_column : string option;  (** the probed index column, if indexed *)
  p_steps : step list;       (** execution order; head is the access step *)
}

val step : ?detail:string -> string -> step
(** A step with no actuals yet. *)

val actuals : step -> rows_in:int -> rows_out:int -> ms:float -> unit
(** Install EXPLAIN ANALYZE's measured row counts and wall time. *)

val kind_name : [ `Indexed | `Scan ] -> string
(** ["indexed"] / ["scan"]. *)

val summary : t -> string
(** Compact one-line form: ["indexed(table.column)"] or
    ["scan(table)"]. *)

val render : t -> string list
(** One line per step: the access step unindented as ["Op detail"],
    every later step as ["  Op: detail"], each with its actuals
    appended when present. *)
