type rel = {
  rname : string;
  rschema : Table.schema;
  rrows : Table.row list;
}

type pred =
  | True
  | Eq of string * Value.t
  | Neq of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | Like of string * string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let of_table t =
  { rname = Table.name t; rschema = Table.schema t; rrows = Table.rows t }

let columns_hint rschema =
  String.concat ", " (List.map fst rschema)

let no_column rel col =
  raise
    (Table.Schema_error
       (Printf.sprintf "table %s: no column %s (columns: %s)" rel.rname col
          (columns_hint rel.rschema)))

let col_index rel col =
  let rec loop i = function
    | [] -> no_column rel col
    | (c, _) :: rest -> if String.equal c col then i else loop (i + 1) rest
  in
  loop 0 rel.rschema

let field rel row col = row.(col_index rel col)

(* Check every column a predicate references against the relation's
   schema, so a WHERE on a nonexistent column is a structured error even
   when the relation is empty (a silent always-false scan otherwise). *)
let rec validate_pred rel = function
  | True -> ()
  | Eq (c, _) | Neq (c, _) | Lt (c, _) | Le (c, _) | Gt (c, _) | Ge (c, _)
  | Like (c, _) ->
      ignore (col_index rel c)
  | And (a, b) | Or (a, b) ->
      validate_pred rel a;
      validate_pred rel b
  | Not a -> validate_pred rel a

(* Numeric-coercing comparison used by ordering predicates. *)
let cmp_values a b =
  match a, b with
  | Value.Int x, Value.Float y -> Float.compare (float_of_int x) y
  | Value.Float x, Value.Int y -> Float.compare x (float_of_int y)
  | _ -> Value.compare a b

let contains_substring ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0

let rec eval_pred rel p row =
  match p with
  | True -> true
  | Eq (c, v) -> cmp_values (field rel row c) v = 0
  | Neq (c, v) -> cmp_values (field rel row c) v <> 0
  | Lt (c, v) -> cmp_values (field rel row c) v < 0
  | Le (c, v) -> cmp_values (field rel row c) v <= 0
  | Gt (c, v) -> cmp_values (field rel row c) v > 0
  | Ge (c, v) -> cmp_values (field rel row c) v >= 0
  | Like (c, pat) -> (
      match field rel row c with
      | Value.Str s -> contains_substring ~needle:pat s
      | Value.Int _ | Value.Float _ | Value.Bool _ -> false)
  | And (a, b) -> eval_pred rel a row && eval_pred rel b row
  | Or (a, b) -> eval_pred rel a row || eval_pred rel b row
  | Not a -> not (eval_pred rel a row)

let select p rel =
  validate_pred rel p;
  { rel with rrows = List.filter (eval_pred rel p) rel.rrows }

(* Stable text for a predicate, used by EXPLAIN. Parenthesization is
   explicit everywhere so the rendering is unambiguous without
   precedence knowledge (and golden tests stay trivially stable). *)
let value_literal = function
  | Value.Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''"
          else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf
  | v -> Value.to_string v

let rec pred_to_string = function
  | True -> "true"
  | Eq (c, v) -> Printf.sprintf "%s = %s" c (value_literal v)
  | Neq (c, v) -> Printf.sprintf "%s != %s" c (value_literal v)
  | Lt (c, v) -> Printf.sprintf "%s < %s" c (value_literal v)
  | Le (c, v) -> Printf.sprintf "%s <= %s" c (value_literal v)
  | Gt (c, v) -> Printf.sprintf "%s > %s" c (value_literal v)
  | Ge (c, v) -> Printf.sprintf "%s >= %s" c (value_literal v)
  | Like (c, pat) -> Printf.sprintf "%s LIKE '%s'" c pat
  | And (a, b) ->
      Printf.sprintf "(%s AND %s)" (pred_to_string a) (pred_to_string b)
  | Or (a, b) ->
      Printf.sprintf "(%s OR %s)" (pred_to_string a) (pred_to_string b)
  | Not a -> Printf.sprintf "(NOT %s)" (pred_to_string a)

(* Equality conjuncts available for index probing: [Eq] nodes reachable
   from the root through [And] only. Under [Or]/[Not] an equality no
   longer bounds the result set. *)
let rec eq_conjuncts = function
  | Eq (c, v) -> [ (c, v) ]
  | And (a, b) -> eq_conjuncts a @ eq_conjuncts b
  | _ -> []

let c_select_indexed =
  lazy (Icdb_obs.Metrics.counter "reldb.select.indexed")

let c_select_scan = lazy (Icdb_obs.Metrics.counter "reldb.select.scan")

type access =
  | Scan
  | Probe of {
      ap_col : string;
      ap_value : Value.t;
      ap_est : int;
      ap_stats : bool;
    }

(* Choose the access path without touching any row: every eligible
   equality conjunct is costed via {!Table.probe_estimate} (O(1) when
   statistics exist, one bucket-length walk otherwise) and the smallest
   estimate wins. Only the winner is ever materialized — the old
   planner copied every candidate bucket just to measure it. *)
let plan_access tbl p =
  let best =
    List.fold_left
      (fun acc (c, v) ->
        match Table.probe_estimate tbl c v with
        | None -> acc
        | Some est -> (
            let n, from_stats =
              match est with `Stats n -> (n, true) | `Bucket n -> (n, false)
            in
            match acc with
            | Some (_, _, m, _) when m <= n -> acc
            | _ -> Some (c, v, n, from_stats)))
      None (eq_conjuncts p)
  in
  match best with
  | Some (ap_col, ap_value, ap_est, ap_stats) ->
      Probe { ap_col; ap_value; ap_est; ap_stats }
  | None -> Scan

(* Materialize a chosen access path: the rows the access produces
   before the predicate filters them (the whole table for a scan, one
   bucket's copies for a probe). Bumps the select counters — this is
   the execution step, where plan_access is the decision. Kept separate
   so EXPLAIN ANALYZE can time access and refilter as distinct plan
   nodes. *)
let run_access tbl p access =
  let base =
    { rname = Table.name tbl; rschema = Table.schema tbl; rrows = [] }
  in
  validate_pred base p;
  match access with
  | Probe { ap_col; ap_value; _ } -> (
      match Table.index_lookup tbl ap_col ap_value with
      | Some rows ->
          Icdb_obs.Metrics.incr (Lazy.force c_select_indexed);
          { base with rrows = rows }
      | None ->
          (* unreachable while the table is unchanged between plan and
             execution (both run under the caller's lock), but fall
             back to the scan rather than assert *)
          Icdb_obs.Metrics.incr (Lazy.force c_select_scan);
          { base with rrows = Table.rows tbl })
  | Scan ->
      Icdb_obs.Metrics.incr (Lazy.force c_select_scan);
      { base with rrows = Table.rows tbl }

let select_table tbl p =
  let acc = run_access tbl p (plan_access tbl p) in
  (* The bucket is a superset of the answer (the equality is one
     conjunct); the full predicate filters it down, so indexed and scan
     execution agree row-for-row. *)
  { acc with rrows = List.filter (eval_pred acc p) acc.rrows }

let project cols rel =
  let idxs = List.map (col_index rel) cols in
  let rschema = List.map (fun i -> List.nth rel.rschema i) idxs in
  let take row = Array.of_list (List.map (fun i -> row.(i)) idxs) in
  { rel with rschema; rrows = List.map take rel.rrows }

let rename pairs rel =
  let ren (c, ty) =
    match List.assoc_opt c pairs with Some c' -> (c', ty) | None -> (c, ty)
  in
  { rel with rschema = List.map ren rel.rschema }

let join left right ~on:(lc, rc) =
  let li = col_index left lc and ri = col_index right rc in
  let left_names = List.map fst left.rschema in
  let disamb (c, ty) =
    if List.mem c left_names then (c ^ "'", ty) else (c, ty)
  in
  let rschema = left.rschema @ List.map disamb right.rschema in
  let rrows =
    List.concat_map
      (fun lrow ->
        List.filter_map
          (fun rrow ->
            if cmp_values lrow.(li) rrow.(ri) = 0 then
              Some (Array.append lrow rrow)
            else None)
          right.rrows)
      left.rrows
  in
  { rname = left.rname ^ "*" ^ right.rname; rschema; rrows }

let order_by col ?(desc = false) rel =
  let i = col_index rel col in
  let cmp a b =
    let c = cmp_values a.(i) b.(i) in
    if desc then -c else c
  in
  { rel with rrows = List.stable_sort cmp rel.rrows }

let distinct rel =
  let seen = Hashtbl.create 64 in
  let keep row =
    let key = String.concat "\x00" (Array.to_list (Array.map Value.encode row)) in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  { rel with rrows = List.filter keep rel.rrows }

let limit n rel =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  { rel with rrows = take (max 0 n) rel.rrows }

let count rel = List.length rel.rrows

let column_values rel col =
  let i = col_index rel col in
  List.map (fun row -> row.(i)) rel.rrows

(* Pareto classification: minimize both objectives. Row r is dominated
   when some row s has s.x <= r.x, s.y <= r.y with at least one strict;
   rows with identical (x, y) never dominate each other, so duplicate
   optima all stay on the frontier. One sort + one sweep: within a
   sorted-by-(x, y) order, a row is frontier iff its y equals its
   x-group minimum AND lies strictly below every strictly-smaller-x
   group's minimum. *)
let pareto_flags ~x ~y rel =
  let xi = col_index rel x and yi = col_index rel y in
  let num col v =
    match v with
    | Value.Int i -> float_of_int i
    | Value.Float f -> f
    | Value.Str _ | Value.Bool _ ->
        raise
          (Table.Schema_error
             (Printf.sprintf
                "table %s: pareto objective %s must be numeric, got %s"
                rel.rname col
                (Value.ty_name (Value.ty_of v))))
  in
  let pts =
    List.mapi (fun i row -> (i, num x row.(xi), num y row.(yi))) rel.rrows
  in
  let sorted =
    List.stable_sort
      (fun (_, x1, y1) (_, x2, y2) ->
        let c = Float.compare x1 x2 in
        if c <> 0 then c else Float.compare y1 y2)
      pts
  in
  let flags = Array.make (List.length pts) false in
  let best_y = ref None (* min y over strictly-smaller-x groups *) in
  let cur = ref None (* (group x, group min y) *) in
  List.iter
    (fun (i, px, py) ->
      (match !cur with
      | Some (gx, gmin) when Float.compare gx px <> 0 ->
          (match !best_y with
          | Some b when Float.compare b gmin <= 0 -> ()
          | _ -> best_y := Some gmin);
          cur := Some (px, py)
      | None -> cur := Some (px, py)
      | Some _ -> ());
      let (_, gmin) = Option.get !cur in
      let below_best =
        match !best_y with None -> true | Some b -> Float.compare py b < 0
      in
      flags.(i) <- Float.compare py gmin = 0 && below_best)
    sorted;
  flags

let pareto ~x ~y rel =
  let flags = pareto_flags ~x ~y rel in
  { rel with rrows = List.filteri (fun i _ -> flags.(i)) rel.rrows }

let dominated ~x ~y rel =
  let flags = pareto_flags ~x ~y rel in
  { rel with rrows = List.filteri (fun i _ -> not flags.(i)) rel.rrows }
