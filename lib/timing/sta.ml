(* Static timing analysis over cell netlists.

   Implements the paper's delay estimator (§4.4.1): each cell carries
   X (delay per unit transistor load), Y (intrinsic) and Z (per fanout);
   the delay of an output is Trans_no*X + Y + fanout_no*Z and a path is
   the sum of its cells' delays. Produces the CW / WD / SD report of
   §3.3: minimum clock width, worst delay from clock to each output, and
   setup time for each input. *)

open Icdb_netlist
open Icdb_logic

exception Timing_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Timing_error s)) fmt

type report = {
  clock_width : float;                 (* CW: minimum clock width, ns *)
  output_delays : (string * float) list;  (* WD per output port *)
  setup_times : (string * float) list;    (* SD per input port *)
}

(* ------------------------------------------------------------------ *)
(* Netlist timing view                                                 *)
(* ------------------------------------------------------------------ *)

type view = {
  nl : Netlist.t;
  cells : (string, Celllib.t) Hashtbl.t;        (* instance -> cell *)
  driver : (string, Netlist.instance) Hashtbl.t;(* net -> driving instance *)
  readers : (string, (Netlist.instance * string) list) Hashtbl.t;
  loads : (string, float) Hashtbl.t;            (* net -> unit-transistor load *)
  port_loads : (string * float) list;
  dmemo : (string, float) Hashtbl.t;            (* instance -> output delay *)
}

let cell_of view (inst : Netlist.instance) =
  match Hashtbl.find_opt view.cells inst.inst_name with
  | Some c -> c
  | None -> fail "no cell for instance %s" inst.inst_name

let make_view ?(port_loads = []) (nl : Netlist.t) =
  let cells = Hashtbl.create 64 in
  List.iter
    (fun (i : Netlist.instance) ->
      match Celllib.find i.cell with
      | Some c -> Hashtbl.replace cells i.inst_name c
      | None -> fail "unknown cell %s" i.cell)
    nl.instances;
  let is_output_pin cell pin = Celllib.is_output_pin cell pin in
  let driver = Hashtbl.create 64 in
  Hashtbl.iter
    (fun net drivers ->
      match drivers with
      | [ (i, _) ] -> Hashtbl.replace driver net i
      | (i, _) :: _ ->
          (* tri-state bus: keep the first driver for timing purposes *)
          Hashtbl.replace driver net i
      | [] -> ())
    (Netlist.drivers nl ~is_output_pin);
  let readers = Netlist.fanouts nl ~is_output_pin in
  let loads = Hashtbl.create 64 in
  let view =
    { nl; cells; driver; readers; loads; port_loads;
      dmemo = Hashtbl.create 64 }
  in
  List.iter
    (fun net ->
      let reader_load =
        match Hashtbl.find_opt readers net with
        | None -> 0.0
        | Some rs ->
            List.fold_left
              (fun acc ((i : Netlist.instance), _pin) ->
                let c = cell_of view i in
                acc +. Celllib.sized_input_load c i.size)
              0.0 rs
      in
      let external_load =
        match List.assoc_opt net port_loads with Some l -> l | None -> 0.0
      in
      Hashtbl.replace loads net (reader_load +. external_load))
    (Netlist.nets nl);
  view

let net_load view net =
  match Hashtbl.find_opt view.loads net with Some l -> l | None -> 0.0

let net_fanout view net =
  match Hashtbl.find_opt view.readers net with
  | Some rs -> List.length rs
  | None -> if List.mem net view.nl.Netlist.outputs then 1 else 0

(* Delay through [inst] driving its output net. Memoized per view:
   analyze runs longest_paths once per clock phase plus once per FF
   and per input, and every run recomputes the same cell delays. The
   view's nets and sizes are fixed, so the delay is a pure function of
   the instance. *)
let instance_delay view (inst : Netlist.instance) =
  match Hashtbl.find_opt view.dmemo inst.Netlist.inst_name with
  | Some d -> d
  | None ->
      let cell = cell_of view inst in
      let out_net = Netlist.pin_net_exn inst cell.Celllib.output in
      let d =
        Celllib.delay cell ~size:inst.size ~load:(net_load view out_net)
          ~fanout:(net_fanout view out_net)
      in
      Hashtbl.replace view.dmemo inst.Netlist.inst_name d;
      d

let is_sequential_cell (c : Celllib.t) =
  match c.Celllib.kind with
  | Celllib.Ff _ -> true
  | Celllib.Comb | Celllib.Latch_cell _ | Celllib.Tri_cell -> false

(* ------------------------------------------------------------------ *)
(* Longest paths                                                       *)
(* ------------------------------------------------------------------ *)

(* Longest arrival time per net given per-net source times. Nets with
   no source on any path have no arrival (None). FF outputs are never
   traversed through: they are sources or dead ends. Latches pass
   through (gated clocks). *)
let longest_paths view ~(source : string -> float option) =
  let memo : (string, float option) Hashtbl.t = Hashtbl.create 128 in
  let on_stack = Hashtbl.create 16 in
  let rec arrival net =
    match Hashtbl.find_opt memo net with
    | Some a -> a
    | None ->
        if Hashtbl.mem on_stack net then
          fail "timing loop through net %s" net;
        Hashtbl.replace on_stack net ();
        let a =
          match source net with
          | Some t -> Some t
          | None -> (
              match Hashtbl.find_opt view.driver net with
              | None -> None
              | Some inst ->
                  let cell = cell_of view inst in
                  if is_sequential_cell cell then None
                  else
                    let input_arrivals =
                      List.filter_map
                        (fun (pin, n) ->
                          if pin = cell.Celllib.output then None else arrival n)
                        inst.Netlist.conns
                    in
                    (match input_arrivals with
                     | [] ->
                         (* tie cells: constant from time 0 *)
                         if cell.Celllib.inputs = [] then Some 0.0 else None
                     | ts ->
                         Some
                           (List.fold_left max neg_infinity ts
                           +. instance_delay view inst)))
        in
        Hashtbl.remove on_stack net;
        Hashtbl.replace memo net a;
        a
  in
  arrival

(* FF instances with their output net and pins of interest. *)
let ff_instances view =
  List.filter_map
    (fun (i : Netlist.instance) ->
      let c = cell_of view i in
      if is_sequential_cell c then Some (i, c) else None)
    view.nl.Netlist.instances

(* clk->Q delay of a flip-flop under its output load. *)
let ff_clk_to_q view (inst : Netlist.instance) =
  instance_delay view inst

(* ------------------------------------------------------------------ *)
(* The report                                                          *)
(* ------------------------------------------------------------------ *)

let data_pins (c : Celllib.t) =
  match c.Celllib.kind with
  | Celllib.Ff { has_set; has_reset } ->
      [ "D" ]
      @ (if has_set then [ "S" ] else [])
      @ if has_reset then [ "R" ] else []
  | Celllib.Comb | Celllib.Latch_cell _ | Celllib.Tri_cell -> []

let analyze ?(port_loads = []) (nl : Netlist.t) =
  Icdb_obs.Trace.with_span "sta.analyze" @@ fun () ->
  let view = make_view ~port_loads nl in
  let ffs = ff_instances view in
  (* arrivals from primary inputs at t=0 *)
  let from_inputs =
    longest_paths view ~source:(fun n ->
        if List.mem n nl.Netlist.inputs then Some 0.0 else None)
  in
  (* Launch time of each FF output: clock-network arrival at its CK pin
     plus clk->Q. Rippled clocks (a register clocked by another
     register's output, as in the ripple counter) converge by
     iteration: each round propagates one more stage of the chain. *)
  let ff_out_time = Hashtbl.create 16 in
  List.iter
    (fun ((i : Netlist.instance), c) ->
      let q = Netlist.pin_net_exn i c.Celllib.output in
      Hashtbl.replace ff_out_time q (ff_clk_to_q view i))
    ffs;
  for _round = 1 to List.length ffs do
    let arrivals =
      longest_paths view ~source:(fun n ->
          if List.mem n nl.Netlist.inputs then Some 0.0
          else Hashtbl.find_opt ff_out_time n)
    in
    List.iter
      (fun ((i : Netlist.instance), c) ->
        let q = Netlist.pin_net_exn i c.Celllib.output in
        let ck = Netlist.pin_net_exn i "CK" in
        let clock_arrival = match arrivals ck with Some t -> t | None -> 0.0 in
        Hashtbl.replace ff_out_time q (clock_arrival +. ff_clk_to_q view i))
      ffs
  done;
  let from_ffs =
    longest_paths view ~source:(fun n -> Hashtbl.find_opt ff_out_time n)
  in
  (* WD per output: worst arrival from a register (clock edge), falling
     back to input-sourced paths for purely combinational outputs. *)
  let output_delays =
    List.map
      (fun o ->
        let wd =
          match from_ffs o, from_inputs o with
          | Some a, _ when ffs <> [] -> a
          | _, Some b -> b
          | Some a, None -> a
          | None, None -> 0.0
        in
        (o, wd))
      nl.Netlist.outputs
  in
  (* SD per input: worst path from the input to any register data-ish
     pin, plus that register's setup. *)
  let setup_times =
    List.map
      (fun inp ->
        let from_this =
          longest_paths view ~source:(fun n ->
              if n = inp then Some 0.0 else None)
        in
        let sd =
          List.fold_left
            (fun acc ((i : Netlist.instance), c) ->
              List.fold_left
                (fun acc pin ->
                  match Netlist.pin_net i pin with
                  | None -> acc
                  | Some n -> (
                      match from_this n with
                      | Some t -> Float.max acc (t +. c.Celllib.setup)
                      | None -> acc))
                acc (data_pins c))
            0.0 ffs
        in
        (inp, sd))
      nl.Netlist.inputs
  in
  (* CW: worst register-to-register path + setup, but at least the
     worst input-to-register setup (external data must also make it in
     one phase) and the widest clk->Q. *)
  let reg_to_reg =
    List.fold_left
      (fun acc ((i : Netlist.instance), c) ->
        List.fold_left
          (fun acc pin ->
            match Netlist.pin_net i pin with
            | None -> acc
            | Some n -> (
                match from_ffs n with
                | Some t -> Float.max acc (t +. c.Celllib.setup)
                | None -> acc))
          acc (data_pins c))
      0.0 ffs
  in
  let worst_clk_to_q =
    List.fold_left
      (fun acc (i, _) -> Float.max acc (ff_clk_to_q view i))
      0.0 ffs
  in
  let worst_sd = List.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 setup_times in
  let clock_width = Float.max reg_to_reg (Float.max worst_clk_to_q worst_sd) in
  { clock_width; output_delays; setup_times }

(* ------------------------------------------------------------------ *)
(* Critical path extraction (for TILOS-style sizing)                   *)
(* ------------------------------------------------------------------ *)

(* Instance names on the worst timing path: the sizer restricts its
   upsizing candidates to these instead of trying the whole netlist. *)
let critical_instances ?(port_loads = []) (nl : Netlist.t) =
  let view = make_view ~port_loads nl in
  let ffs = ff_instances view in
  let ff_out_time = Hashtbl.create 16 in
  List.iter
    (fun ((i : Netlist.instance), c) ->
      let q = Netlist.pin_net_exn i c.Celllib.output in
      Hashtbl.replace ff_out_time q (ff_clk_to_q view i))
    ffs;
  for _round = 1 to List.length ffs do
    let arrivals =
      longest_paths view ~source:(fun n ->
          if List.mem n nl.Netlist.inputs then Some 0.0
          else Hashtbl.find_opt ff_out_time n)
    in
    List.iter
      (fun ((i : Netlist.instance), c) ->
        let q = Netlist.pin_net_exn i c.Celllib.output in
        let ck = Netlist.pin_net_exn i "CK" in
        let clock_arrival = match arrivals ck with Some t -> t | None -> 0.0 in
        Hashtbl.replace ff_out_time q (clock_arrival +. ff_clk_to_q view i))
      ffs
  done;
  let arrival =
    longest_paths view ~source:(fun n ->
        if List.mem n nl.Netlist.inputs then Some 0.0
        else Hashtbl.find_opt ff_out_time n)
  in
  let arr n = match arrival n with Some t -> t | None -> neg_infinity in
  (* endpoints: primary outputs and register data-ish pins *)
  let endpoints =
    List.map (fun o -> (o, arr o)) nl.Netlist.outputs
    @ List.concat_map
        (fun ((i : Netlist.instance), c) ->
          List.filter_map
            (fun pin ->
              Option.map (fun n -> (n, arr n +. c.Celllib.setup))
                (Netlist.pin_net i pin))
            (data_pins c))
        ffs
  in
  let worst =
    List.fold_left
      (fun acc (n, t) ->
        match acc with
        | Some (_, bt) when bt >= t -> acc
        | _ -> if t > neg_infinity then Some (n, t) else acc)
      None endpoints
  in
  match worst with
  | None -> []
  | Some (endpoint, _) ->
      (* walk backwards through the worst-arrival fanins *)
      let rec walk net acc guard =
        if guard > 10000 then acc
        else
          match Hashtbl.find_opt view.driver net with
          | None -> acc
          | Some inst ->
              let cell = cell_of view inst in
              let acc = inst.Netlist.inst_name :: acc in
              if is_sequential_cell cell then acc
              else
                let worst_input =
                  List.fold_left
                    (fun best (pin, n) ->
                      if pin = cell.Celllib.output then best
                      else
                        match best with
                        | Some (_, bt) when bt >= arr n -> best
                        | _ -> if arr n > neg_infinity then Some (n, arr n) else best)
                    None inst.Netlist.conns
                in
                (match worst_input with
                 | Some (n, _) -> walk n acc (guard + 1)
                 | None -> acc)
      in
      List.sort_uniq String.compare (walk endpoint [] 0)

(* Total sized cell area of a netlist, in µm² (cell widths × the fixed
   strip height); the pre-layout area figure sizing optimizes against. *)
let cell_area (nl : Netlist.t) =
  List.fold_left
    (fun acc (i : Netlist.instance) ->
      match Celllib.find i.cell with
      | Some c -> acc +. (Celllib.sized_width c i.size *. Celllib.cell_height)
      | None -> acc)
    0.0 nl.Netlist.instances

(* Render the §3.3 delay listing: CW, then WD per output, then SD per
   input that feeds sequential logic. *)
let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "CW %.1f\n" r.clock_width);
  List.iter
    (fun (o, t) -> Buffer.add_string buf (Printf.sprintf "WD %s %.1f\n" o t))
    r.output_delays;
  List.iter
    (fun (i, t) ->
      if t > 0.0 then
        Buffer.add_string buf (Printf.sprintf "SD %s %.1f\n" i t))
    r.setup_times;
  Buffer.contents buf
