(* Transistor sizing (the TILOS/Aesop substitute, §4.3 step 4).

   Greedy sensitivity-based sizing on the linear delay model: while a
   timing constraint is violated, walk the critical path and enlarge the
   instance whose upsizing buys the most delay for the least area.
   Constraints follow CQL's request_component keywords: comb_delay
   triples (output, max delay, output load), set-up time bound, clock
   width bound, or a strategy (fastest / cheapest). *)

open Icdb_netlist

type strategy = Fastest | Cheapest | Balanced

type constraints = {
  clock_width : float option;           (* CW upper bound, ns *)
  comb_delays : (string * float) list;  (* output port -> WD bound *)
  setup_bound : float option;           (* max SD over all inputs *)
  port_loads : (string * float) list;   (* output port -> unit-transistor load *)
  strategy : strategy;
}

let default_constraints =
  { clock_width = None;
    comb_delays = [];
    setup_bound = None;
    port_loads = [];
    strategy = Balanced }

let max_size = 8.0
let size_step = 1.3
let max_iterations = 400

(* Worst violation in ns; <= 0 when all constraints are met. *)
let violation (r : Sta.report) c =
  let v = ref neg_infinity in
  (match c.clock_width with
   | Some bound -> v := Float.max !v (r.Sta.clock_width -. bound)
   | None -> ());
  List.iter
    (fun (port, bound) ->
      if port = "*" then
        (* the CQL "comb_delay:<n>" form: bound every output *)
        List.iter
          (fun (_, wd) -> v := Float.max !v (wd -. bound))
          r.Sta.output_delays
      else
        match List.assoc_opt port r.Sta.output_delays with
        | Some wd -> v := Float.max !v (wd -. bound)
        | None -> ())
    c.comb_delays;
  (match c.setup_bound with
   | Some bound ->
       List.iter
         (fun (_, sd) -> v := Float.max !v (sd -. bound))
         r.Sta.setup_times
   | None -> ());
  if !v = neg_infinity then 0.0 else !v

(* A figure of merit to minimize for the strategies. *)
let merit (r : Sta.report) nl = function
  | Fastest ->
      r.Sta.clock_width
      +. List.fold_left (fun acc (_, wd) -> Float.max acc wd) 0.0
           r.Sta.output_delays
  | Cheapest | Balanced -> Sta.cell_area nl

let resize nl inst_name factor =
  { nl with
    Netlist.instances =
      List.map
        (fun (i : Netlist.instance) ->
          if i.inst_name = inst_name then
            { i with size = Float.min max_size (i.size *. factor) }
          else i)
        nl.Netlist.instances }

(* Candidate instances: the TILOS move — only gates on the current
   critical path are worth upsizing; trying each of those and keeping
   the best violation-improvement per added area is cheap because the
   path is short compared to the netlist. *)
let best_upsize nl c current_violation =
  let base_area = Sta.cell_area nl in
  let try_candidates candidates =
    List.fold_left
      (fun best (i : Netlist.instance) ->
        if i.size >= max_size then best
        else
          let nl' = resize nl i.inst_name size_step in
          let r' = Sta.analyze ~port_loads:c.port_loads nl' in
          let v' = violation r' c in
          let gain = current_violation -. v' in
          if gain <= 1e-9 then best
          else
            let cost = Float.max 1.0 (Sta.cell_area nl' -. base_area) in
            let score = gain /. cost in
            match best with
            | Some (_, _, best_score) when best_score >= score -> best
            | _ -> Some (i.inst_name, nl', score))
      None candidates
  in
  let on_path = Sta.critical_instances ~port_loads:c.port_loads nl in
  let path_candidates =
    List.filter (fun (i : Netlist.instance) -> List.mem i.inst_name on_path)
      nl.Netlist.instances
  in
  (* the violated constraint may not lie on the globally-worst path
     (e.g. a clock-width bound while an untimed output is slower);
     fall back to the full netlist when the path offers no gain *)
  match try_candidates path_candidates with
  | Some r -> Some r
  | None -> try_candidates nl.Netlist.instances

(* Meet the constraints by greedy upsizing. Returns the sized netlist
   (best effort: if constraints are unreachable the largest-improvement
   netlist found is returned along with the final report). *)
let size_to_constraints (nl : Netlist.t) (c : constraints) =
  Icdb_obs.Trace.with_span "sizing.size" @@ fun () ->
  match c.strategy with
  | Cheapest -> nl  (* minimum area: leave everything at size 1 *)
  | Fastest ->
      (* upsize gates on the critical path while the merit (delay)
         keeps dropping measurably *)
      let rec loop nl iters =
        if iters >= max_iterations then nl
        else
          let r = Sta.analyze ~port_loads:c.port_loads nl in
          let m = merit r nl Fastest in
          let on_path = Sta.critical_instances ~port_loads:c.port_loads nl in
          let candidates =
            List.filter
              (fun (i : Netlist.instance) -> List.mem i.inst_name on_path)
              nl.Netlist.instances
          in
          let candidates =
            if candidates = [] then nl.Netlist.instances else candidates
          in
          let candidate =
            List.fold_left
              (fun best (i : Netlist.instance) ->
                if i.size >= max_size then best
                else
                  let nl' = resize nl i.inst_name size_step in
                  let r' = Sta.analyze ~port_loads:c.port_loads nl' in
                  let m' = merit r' nl' Fastest in
                  match best with
                  | Some (_, bm) when bm <= m' -> best
                  | _ -> if m' < m -. 1e-6 then Some (nl', m') else best)
              None candidates
          in
          match candidate with
          | Some (nl', _) -> loop nl' (iters + 1)
          | None -> nl
      in
      loop nl 0
  | Balanced ->
      let rec loop nl iters =
        let r = Sta.analyze ~port_loads:c.port_loads nl in
        let v = violation r c in
        if v <= 0.0 || iters >= max_iterations then nl
        else
          match best_upsize nl c v with
          | Some (_, nl', _) -> loop nl' (iters + 1)
          | None -> nl
      in
      loop nl 0

let meets_constraints nl c =
  let r = Sta.analyze ~port_loads:c.port_loads nl in
  violation r c <= 0.0
