(* CQL command execution against an ICDB server.

   The C-binding of the paper (ICDB("...", &vars)) becomes a typed call:
   [run server command ~args] where [args] fills the %-slots in order
   and the returned association list binds each ?-slot's keyword to its
   result, mirroring scanf/printf as §3.2 describes. *)

open Icdb

type arg =
  | Astr of string
  | Aint of int
  | Afloat of float
  | Astrs of string list

type result =
  | Rstr of string
  | Rint of int
  | Rfloat of float
  | Rstrs of string list

exception Cql_error = Command.Cql_error

let fail fmt = Printf.ksprintf (fun s -> raise (Cql_error s)) fmt

(* A term's value once input slots are substituted. *)
type value =
  | Vname of string
  | Vnum of float
  | Vtuple of (string * string option) list
  | Vstrs of string list
  | Vout of Command.slot

type bound = { key : string; value : value }

let bind_inputs (cmd : Command.t) (args : arg list) =
  let remaining = ref args in
  let pop key =
    match !remaining with
    | a :: rest ->
        remaining := rest;
        a
    | [] -> fail "not enough arguments: %%-slot for %s unfilled" key
  in
  let bound =
    List.map
      (fun (term : Command.term) ->
        let value =
          match term.Command.rhs with
          | Command.Name n -> Vname n
          | Command.Number f -> Vnum f
          | Command.Tuple t -> Vtuple t
          | Command.Out_slot s -> Vout s
          | Command.In_slot slot -> (
              match slot, pop term.Command.key with
              | (Command.Sstr | Command.Sfile), Astr s -> Vname s
              | Command.Sint, Aint i -> Vnum (float_of_int i)
              | Command.Sfloat, Afloat f -> Vnum f
              | Command.Sfloat, Aint i -> Vnum (float_of_int i)
              | Command.Sstr_arr, Astrs l -> Vstrs l
              | _, _ ->
                  fail "argument type mismatch for %s" term.Command.key)
        in
        { key = term.Command.key; value })
      cmd
  in
  if !remaining <> [] then fail "too many arguments supplied";
  bound

let find bound key = List.find_opt (fun b -> b.key = key) bound

let find_any bound keys = List.find_map (find bound) keys

let name_of key = function
  | Vname n -> n
  | Vnum f -> Printf.sprintf "%g" f
  | _ -> fail "%s expects a name" key

let tuple_of key = function
  | Vtuple t -> t
  | Vname n -> [ (n, None) ]
  | _ -> fail "%s expects a list" key

let wants_output bound key =
  match find bound key with Some { value = Vout _; _ } -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Value conversions                                                   *)
(* ------------------------------------------------------------------ *)

let funcs_of_tuple t =
  List.map
    (fun (name, v) ->
      if v <> None then fail "function list entries take no value";
      Icdb_genus.Func.of_string name)
    t

let attrs_of_tuple t =
  List.map
    (fun (name, v) ->
      match v with
      | Some v -> (
          match int_of_string_opt v with
          | Some i -> (name, i)
          | None -> fail "attribute %s needs an integer value" name)
      | None -> fail "attribute %s needs a value" name)
    t

(* The rdelay/oload block of §3.2.2. *)
let parse_delay_block text =
  let comb = ref [] and loads = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match
           String.split_on_char ' ' (String.trim line)
           |> List.filter (fun s -> s <> "")
         with
         | [] -> ()
         | [ "rdelay"; port; bound ] ->
             comb := (port, float_of_string bound) :: !comb
         | [ "oload"; port; load ] ->
             loads := (port, float_of_string load) :: !loads
         | _ -> fail "malformed delay constraint line: %s" line);
  (List.rev !comb, List.rev !loads)

let constraints_of bound =
  let c = ref Icdb_timing.Sizing.default_constraints in
  (match find bound "clock_width" with
   | Some { value = Vnum f; _ } ->
       c := { !c with Icdb_timing.Sizing.clock_width = Some f }
   | Some _ -> fail "clock_width expects a number"
   | None -> ());
  (match find_any bound [ "seq_delay"; "set_up_time" ] with
   | Some { value = Vnum f; _ } ->
       c := { !c with Icdb_timing.Sizing.setup_bound = Some f }
   | Some _ -> fail "set_up_time expects a number"
   | None -> ());
  (match find bound "comb_delay" with
   | Some { value = Vnum f; _ } ->
       (* a single number bounds the delay of every output *)
       c := { !c with Icdb_timing.Sizing.comb_delays = [ ("*", f) ] }
   | Some { value = Vtuple t; _ } ->
       let ds =
         List.map
           (fun (port, v) ->
             match v with
             | Some v -> (port, float_of_string v)
             | None -> fail "comb_delay entry %s needs a bound" port)
           t
       in
       c := { !c with Icdb_timing.Sizing.comb_delays = ds }
   | Some { value = Vname text; _ } ->
       let ds, loads = parse_delay_block text in
       c :=
         { !c with
           Icdb_timing.Sizing.comb_delays = ds;
           Icdb_timing.Sizing.port_loads = loads }
   | Some _ -> fail "comb_delay expects a number, a list or a constraint block"
   | None -> ());
  (match find bound "oload" with
   | Some { value = Vtuple t; _ } ->
       let loads =
         List.map
           (fun (port, v) ->
             match v with
             | Some v -> (port, float_of_string v)
             | None -> fail "oload entry %s needs a load" port)
           t
       in
       c := { !c with Icdb_timing.Sizing.port_loads =
                        !c.Icdb_timing.Sizing.port_loads @ loads }
   | Some _ -> fail "oload expects a list"
   | None -> ());
  (match find bound "strategy" with
   | Some { value = Vname "fastest"; _ } ->
       c := { !c with Icdb_timing.Sizing.strategy = Icdb_timing.Sizing.Fastest }
   | Some { value = Vname "cheapest"; _ } ->
       c := { !c with Icdb_timing.Sizing.strategy = Icdb_timing.Sizing.Cheapest }
   | Some { value = Vname s; _ } -> fail "unknown strategy %s" s
   | Some _ -> fail "strategy expects a name"
   | None -> ());
  !c

(* ------------------------------------------------------------------ *)
(* Command handlers                                                    *)
(* ------------------------------------------------------------------ *)

let strings_result fs = Rstrs fs

let handle_function_query server bound =
  let funcs =
    match find bound "function" with
    | Some { value; _ } -> funcs_of_tuple (tuple_of "function" value)
    | None -> fail "function_query needs a function list"
  in
  let out = ref [] in
  if wants_output bound "component" then
    out := ("component", strings_result (Server.function_query server funcs)) :: !out;
  if wants_output bound "implementation" then
    out :=
      ("implementation", strings_result (Server.implementation_query server funcs))
      :: !out;
  if !out = [] then fail "function_query has no output slot";
  List.rev !out

let handle_component_query server bound =
  (* forward: component/implementation -> functions; reverse: function
     list + output slot -> matching components *)
  match find_any bound [ "component"; "implementation"; "ICDB_components"; "ICDBcomponents" ] with
  | Some { key; value = Vname name; _ } when key <> "" && wants_output bound "function" ->
      let fs = Server.component_query server name in
      [ ("function", strings_result (List.map Icdb_genus.Func.to_string fs)) ]
  | Some { value = Vout _; _ } -> (
      match find bound "function" with
      | Some { value; _ } ->
          let funcs = funcs_of_tuple (tuple_of "function" value) in
          let names = Server.function_query server funcs in
          [ ("component", strings_result names) ]
      | None -> fail "component_query needs a component or a function list")
  | _ -> (
      match find bound "function" with
      | Some { value = Vout _; _ } -> fail "component_query: missing component name"
      | Some { value; _ } ->
          let funcs = funcs_of_tuple (tuple_of "function" value) in
          let names = Server.function_query server funcs in
          let key =
            if wants_output bound "ICDB_components" then "ICDB_components"
            else "component"
          in
          [ (key, strings_result names) ]
      | None -> fail "component_query needs a component or a function list")

let handle_request_component server bound =
  (* layout request variant: instance + CIF_layout *)
  let is_layout_request =
    wants_output bound "CIF_layout"
    &&
    match find bound "instance" with
    | Some { value = Vname _; _ } -> true
    | _ -> false
  in
  if is_layout_request then begin
    let id =
      match find bound "instance" with
      | Some { value = Vname n; _ } -> n
      | _ -> fail "layout request needs an instance"
    in
    let alternative =
      match find bound "alternative" with
      | Some { value = Vnum f; _ } -> int_of_float f
      | Some _ -> fail "alternative expects a number"
      | None -> 0
    in
    let port_specs =
      match find bound "port_position" with
      | Some { value = Vname text; _ } -> Some (Icdb_layout.Ports.parse text)
      | Some _ -> fail "port_position expects a string"
      | None -> None
    in
    let _layout, cif, file =
      Server.request_layout server id ~alternative ?port_specs ()
    in
    [ ("CIF_layout", Rstr cif); ("CIF_file", Rstr file) ]
  end
  else begin
    let constraints = constraints_of bound in
    let functions =
      match find bound "function" with
      | Some { value; _ } -> funcs_of_tuple (tuple_of "function" value)
      | None -> []
    in
    let attributes =
      match find bound "attribute" with
      | Some { value; _ } -> attrs_of_tuple (tuple_of "attribute" value)
      | None -> []
    in
    (* the paper also allows size:4 as a direct keyword *)
    let attributes =
      match find bound "size" with
      | Some { value = Vnum f; _ } -> ("size", int_of_float f) :: attributes
      | Some _ -> fail "size expects a number"
      | None -> attributes
    in
    let source =
      match
        find_any bound [ "component_name"; "component"; "implementation";
                         "IIF"; "VHDL_net_list" ]
      with
      | Some { key = "implementation"; value; _ } ->
          Spec.From_implementation
            { implementation = name_of "implementation" value;
              params = attributes }
      | Some { key = "IIF"; value; _ } ->
          Spec.From_iif (name_of "IIF" value)
      | Some { key = "VHDL_net_list"; value; _ } ->
          Spec.From_vhdl_netlist (name_of "VHDL_net_list" value)
      | Some { key = ("component_name" | "component"); value; _ } ->
          Spec.From_component
            { component = name_of "component" value; attributes; functions }
      | Some { key; _ } -> fail "unexpected source keyword %s" key
      | None -> fail "request_component needs a component, implementation, IIF or VHDL_net_list"
    in
    let name_hint =
      match find bound "naming" with
      | Some { value = Vname n; _ } -> Some n
      | _ -> None
    in
    let generator =
      match find bound "generator" with
      | Some { value = Vname n; _ } -> Some n
      | _ -> None
    in
    let target =
      match find bound "target" with
      | Some { value = Vname "layout"; _ } -> Spec.Layout
      | Some { value = Vname ("logic" | "Logic"); _ } | None -> Spec.Logic
      | Some { value = Vname other; _ } -> fail "unknown target %s" other
      | Some _ -> fail "target expects a name"
    in
    let spec = Spec.make ~constraints ~target ?name_hint ?generator source in
    let before =
      if wants_output bound "cache" then Some (Server.stats server) else None
    in
    let inst = Server.request_component server spec in
    let out_key =
      if wants_output bound "generated_component" then "generated_component"
      else if wants_output bound "instance" then "instance"
      else if wants_output bound "component_instance" then "component_instance"
      else fail "request_component has no instance output slot"
    in
    let extra =
      if wants_output bound "degraded" then
        [ ("degraded", Rstr (if inst.Instance.degraded then "yes" else "no")) ]
      else []
    in
    let extra =
      match before with
      | None -> extra
      | Some b ->
          (* The whole command runs under the server lock, so the
             counter delta is exactly this request's classification. *)
          let a = Server.stats server in
          let kind =
            if a.Server.st_hits > b.Server.st_hits then "hit"
            else if a.Server.st_reuse_hits > b.Server.st_reuse_hits then
              "reuse"
            else "miss"
          in
          ("cache", Rstr kind) :: extra
    in
    (out_key, Rstr inst.Instance.id) :: extra
  end

let handle_instance_query server bound =
  let id =
    match find_any bound [ "instance"; "generated_component" ] with
    | Some { value = Vname n; _ } -> n
    | _ -> fail "instance_query needs an instance name"
  in
  let inst = Server.find_instance server id in
  let out = ref [] in
  let add key r = out := (key, r) :: !out in
  if wants_output bound "delay" then add "delay" (Rstr (Instance.delay_string inst));
  if wants_output bound "shape_function" then
    add "shape_function" (Rstr (Instance.shape_string inst));
  if wants_output bound "area" then add "area" (Rstr (Instance.area_listing inst));
  if wants_output bound "function" then
    add "function"
      (Rstrs (List.map Icdb_genus.Func.to_string inst.Instance.functions));
  if wants_output bound "connect" then
    add "connect" (Rstr (Instance.connect_string inst));
  if wants_output bound "VHDL_net_list" then
    add "VHDL_net_list" (Rstr (Instance.vhdl_netlist inst));
  if wants_output bound "VHDL_head" then
    add "VHDL_head" (Rstr (Instance.vhdl_head inst));
  if wants_output bound "clock_width" then
    add "clock_width" (Rfloat inst.Instance.report.Icdb_timing.Sta.clock_width);
  if wants_output bound "gates" then add "gates" (Rint (Instance.gate_count inst));
  if wants_output bound "area_value" then
    add "area_value" (Rfloat (Instance.best_area inst));
  if wants_output bound "delay_value" then
    add "delay_value" (Rfloat (Instance.worst_delay inst));
  if wants_output bound "power_value" then
    add "power_value"
      (Rfloat (Lazy.force inst.Instance.power).Icdb_timing.Power.dynamic_mw);
  if wants_output bound "constraints_met" then
    add "constraints_met"
      (Rstr (if inst.Instance.constraints_met then "yes" else "no"));
  if wants_output bound "degraded" then
    add "degraded" (Rstr (if inst.Instance.degraded then "yes" else "no"));
  if wants_output bound "power" then
    add "power" (Rstr (Instance.power_string inst));
  if wants_output bound "equivalent_ports" then
    add "equivalent_ports" (Rstr (Instance.equivalent_ports_string inst));
  if wants_output bound "inverted_ports" then
    add "inverted_ports" (Rstr (Instance.inverted_ports_string inst));
  if !out = [] then fail "instance_query has no output slot";
  List.rev !out

let handle_connect server bound =
  let id =
    match find_any bound [ "instance"; "generated_component" ] with
    | Some { value = Vname n; _ } -> n
    | _ -> fail "connect_component needs an instance name"
  in
  let inst = Server.find_instance server id in
  [ ("connect", Rstr (Instance.connect_string inst)) ]

let design_name bound =
  match find bound "design" with
  | Some { value = Vname n; _ } -> n
  | _ -> fail "missing design name"

let handle_list_command server bound = function
  | "start_a_design" ->
      Server.start_design server (design_name bound);
      []
  | "start_a_transaction" ->
      Server.start_transaction server (design_name bound);
      []
  | "put_in_component_list" ->
      let id =
        match find bound "instance" with
        | Some { value = Vname n; _ } -> n
        | _ -> fail "put_in_component_list needs an instance"
      in
      Server.put_in_component_list server (design_name bound) id;
      []
  | "end_a_transaction" ->
      Server.end_transaction server (design_name bound);
      []
  | "end_a_design" ->
      Server.end_design server (design_name bound);
      []
  | cmd -> fail "unknown command %s" cmd

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run server ?(args = []) command_string =
  let cmd = Command.parse command_string in
  let bound = bind_inputs cmd args in
  match Command.command_name cmd with
  | "function_query" -> handle_function_query server bound
  | "component_query" -> handle_component_query server bound
  | "request_component" -> handle_request_component server bound
  | "instance_query" -> handle_instance_query server bound
  | "connect_component" -> handle_connect server bound
  | ("start_a_design" | "start_a_transaction" | "put_in_component_list"
    | "end_a_transaction" | "end_a_design") as c ->
      handle_list_command server bound c
  | c -> fail "unknown command %s" c

(* Typed accessors over the result bindings. *)

let get_string results key =
  match List.assoc_opt key results with
  | Some (Rstr s) -> s
  | Some _ -> fail "%s is not a string result" key
  | None -> fail "no result bound to %s" key

let get_strings results key =
  match List.assoc_opt key results with
  | Some (Rstrs l) -> l
  | Some _ -> fail "%s is not a string-array result" key
  | None -> fail "no result bound to %s" key

let get_float results key =
  match List.assoc_opt key results with
  | Some (Rfloat f) -> f
  | Some (Rint i) -> float_of_int i
  | Some _ -> fail "%s is not a numeric result" key
  | None -> fail "no result bound to %s" key
