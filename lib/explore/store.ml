(* The persistent exploration relation: one row per swept design point,
   write-ahead-journaled through lib/reldb so a killed sweep resumes
   from exactly the points it had persisted. *)

open Icdb_reldb

exception Store_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Store_error s)) fmt

let table_name = "exploration"

(* clock_bound/delay_bound use 0.0 for "unconstrained": the relation
   keeps every column a concrete value so Pareto/SQL queries stay
   simple. *)
let schema =
  [ ("spec_key", Value.Tstr);
    ("sweep", Value.Tstr);
    ("component", Value.Tstr);
    ("attrs", Value.Tstr);
    ("strategy", Value.Tstr);
    ("clock_bound", Value.Tfloat);
    ("delay_bound", Value.Tfloat);
    ("instance", Value.Tstr);
    ("area", Value.Tfloat);
    ("delay", Value.Tfloat);
    ("power", Value.Tfloat);
    ("gates", Value.Tint);
    ("cache", Value.Tstr);
    ("latency_s", Value.Tfloat);
    ("degraded", Value.Tbool);
    ("constraints_met", Value.Tbool) ]

(* Columns the CLI/bench query by equality; indexed at every open.
   Indexes are derived state (never journaled), rebuilt here after
   recovery. *)
let indexed_columns = [ "spec_key"; "sweep"; "component" ]

type t = {
  dir : string;
  db : Db.t;
  journal : Journal.t;
  snapshot : string;
}

type result = {
  r_point : Axis.point;
  r_instance : string;
  r_area : float;
  r_delay : float;
  r_power : float;
  r_gates : int;
  r_cache : string;
  r_latency_s : float;
  r_degraded : bool;
  r_constraints_met : bool;
}

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ dir =
  mkdir_p dir;
  let journal_path = Filename.concat dir "explore.journal" in
  let snapshot = Filename.concat dir "explore.db" in
  let db, _report = Db.recover ~snapshot ~journal_path () in
  let journal = Journal.open_append journal_path in
  Db.attach_journal db journal;
  (match Db.table_opt db table_name with
  | Some tbl ->
      if Table.schema tbl <> schema then
        fail "%s: exploration table has an incompatible schema" dir
  | None -> ignore (Db.create_table db table_name schema));
  let tbl = Db.table db table_name in
  List.iter (Table.create_index tbl) indexed_columns;
  (* statistics are derived state like the indexes: recomputed from the
     recovered rows so the planner ranks candidate index buckets from
     real selectivities on the very first query *)
  ignore (Table.analyze tbl);
  { dir; db; journal; snapshot }

let close t =
  Db.detach_journal t.db;
  Journal.close t.journal

let db t = t.db
let dir t = t.dir
let table t = Db.table t.db table_name

let add t ~sweep (r : result) =
  let p = r.r_point in
  Db.insert t.db table_name
    [ Value.Str (Axis.point_key p);
      Value.Str sweep;
      Value.Str p.Axis.p_component;
      Value.Str (Axis.attrs_string p.Axis.p_attrs);
      Value.Str (Axis.strategy_name p.Axis.p_strategy);
      Value.Float (Option.value ~default:0.0 p.Axis.p_clock);
      Value.Float (Option.value ~default:0.0 p.Axis.p_delay);
      Value.Str r.r_instance;
      Value.Float r.r_area;
      Value.Float r.r_delay;
      Value.Float r.r_power;
      Value.Int r.r_gates;
      Value.Str r.r_cache;
      Value.Float r.r_latency_s;
      Value.Bool r.r_degraded;
      Value.Bool r.r_constraints_met ]

(* The resume set: spec keys already persisted for this sweep. Served
   by the sweep index (equality pushdown), so reopening a large store
   does not rescan the relation. *)
let persisted_keys t ~sweep =
  let rel =
    Query.select_table (table t) (Query.Eq ("sweep", Value.Str sweep))
  in
  let keys = Hashtbl.create 256 in
  List.iter
    (fun v ->
      match v with Value.Str k -> Hashtbl.replace keys k () | _ -> ())
    (Query.column_values rel "spec_key");
  keys

let count t ~sweep =
  Query.count
    (Query.select_table (table t) (Query.Eq ("sweep", Value.Str sweep)))

let cardinality t = Table.cardinality (table t)

let checkpoint t = Db.checkpoint t.db ~snapshot:t.snapshot

let query t stmt = Sql.exec t.db stmt
