(* Sweep lattices: the attribute/constraint axes a design-space
   exploration walks, and their expansion into concrete request points.
   Follows DB4HLS: a sweep is the cartesian product of explicit,
   bounded axes. *)

open Icdb_timing

exception Axis_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Axis_error s)) fmt

type axis =
  | Attr of { name : string; values : int list }
      (* component attribute, e.g. size=2..9 or output_latch=0,1 *)
  | Strategy of Sizing.strategy list
  | Clock of float option list   (* CW upper bounds; None = unbounded *)
  | Delay of float option list   (* WD bound on every output *)

type point = {
  p_component : string;
  p_attrs : (string * int) list;  (* in axis order *)
  p_strategy : Sizing.strategy;
  p_clock : float option;
  p_delay : float option;
}

(* Hard ceilings: sweeps are explicit and bounded by construction. *)
let max_axis_values = 4096
let max_points = 1_000_000

let strategy_name = function
  | Sizing.Fastest -> "fastest"
  | Sizing.Cheapest -> "cheapest"
  | Sizing.Balanced -> "balanced"

let strategy_of_name = function
  | "fastest" -> Sizing.Fastest
  | "cheapest" -> Sizing.Cheapest
  | "balanced" -> Sizing.Balanced
  | s -> fail "unknown strategy %S (fastest, cheapest, balanced)" s

(* ------------------------------------------------------------------ *)
(* Axis spec parsing                                                   *)
(* ------------------------------------------------------------------ *)

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> fail "%s: %S is not an integer" what s

let parse_float_opt what s =
  match String.trim s with
  | "none" | "unbounded" -> None
  | s -> (
      match float_of_string_opt s with
      | Some f when Float.is_finite f && f > 0.0 -> Some f
      | Some _ -> fail "%s: bound %S must be a positive finite number" what s
      | None -> fail "%s: %S is not a number (or 'none')" what s)

let split_commas s = String.split_on_char ',' s |> List.map String.trim

(* "2..9" or "2..9..2" *)
let parse_range name s =
  match String.split_on_char '.' s with
  | [ a; ""; b ] ->
      let lo = parse_int name a and hi = parse_int name b in
      (lo, hi, 1)
  | [ a; ""; b; ""; st ] ->
      let lo = parse_int name a and hi = parse_int name b in
      (lo, hi, parse_int name st)
  | _ -> fail "axis %s: malformed range %S (want lo..hi or lo..hi..step)" name s

let check_axis_size name n =
  if n = 0 then fail "axis %s: no values" name;
  if n > max_axis_values then
    fail "axis %s: %d values exceeds the per-axis bound of %d" name n
      max_axis_values

(* An axis spec is "name=values":
   - [strategy=fastest,cheapest,balanced]
   - [clock=10,20,none] (ns upper bounds; none = unconstrained)
   - [delay=5,7.5,none] (WD bound applied to every output)
   - anything else is an integer component attribute, either a comma
     list ([size=2,4,8]) or a range ([size=2..9], [size=2..16..2]). *)
let parse spec =
  match String.index_opt spec '=' with
  | None -> fail "axis %S: expected name=values" spec
  | Some i ->
      let name = String.trim (String.sub spec 0 i) in
      let rhs =
        String.trim (String.sub spec (i + 1) (String.length spec - i - 1))
      in
      if name = "" then fail "axis %S: empty axis name" spec;
      if rhs = "" then fail "axis %s: no values" name;
      let axis =
        match name with
        | "strategy" ->
            Strategy (List.map strategy_of_name (split_commas rhs))
        | "clock" | "clock_width" ->
            Clock (List.map (parse_float_opt "clock") (split_commas rhs))
        | "delay" | "comb_delay" ->
            Delay (List.map (parse_float_opt "delay") (split_commas rhs))
        | _ ->
            let values =
              if String.length rhs >= 2 && String.contains rhs '.' then
                let lo, hi, step = parse_range name rhs in
                if step <= 0 then fail "axis %s: step must be positive" name;
                if lo > hi then fail "axis %s: empty range %d..%d" name lo hi;
                let rec up v acc =
                  if v > hi then List.rev acc else up (v + step) (v :: acc)
                in
                up lo []
              else List.map (parse_int name) (split_commas rhs)
            in
            List.iter
              (fun v ->
                if v < 0 then fail "axis %s: negative attribute value %d" name v)
              values;
            Attr { name; values }
      in
      let n =
        match axis with
        | Attr { values; _ } -> List.length values
        | Strategy l -> List.length l
        | Clock l | Delay l -> List.length l
      in
      check_axis_size name n;
      axis

let axis_name = function
  | Attr { name; _ } -> name
  | Strategy _ -> "strategy"
  | Clock _ -> "clock"
  | Delay _ -> "delay"

let axis_length = function
  | Attr { values; _ } -> List.length values
  | Strategy l -> List.length l
  | Clock l | Delay l -> List.length l

(* ------------------------------------------------------------------ *)
(* Expansion                                                           *)
(* ------------------------------------------------------------------ *)

let validate_axes axes =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let n = axis_name a in
      if Hashtbl.mem seen n then fail "duplicate axis %s" n;
      Hashtbl.add seen n ())
    axes

(* Deterministic cartesian product: the first axis varies slowest,
   values in declaration order. *)
let expand ~component axes =
  validate_axes axes;
  let total =
    List.fold_left (fun acc a -> acc * axis_length a) 1 axes
  in
  if total > max_points then
    fail "sweep has %d points, exceeding the bound of %d" total max_points;
  let seed =
    { p_component = component;
      p_attrs = [];
      p_strategy = Sizing.Balanced;
      p_clock = None;
      p_delay = None }
  in
  let apply p axis =
    match axis with
    | Attr { name; values } ->
        List.map (fun v -> { p with p_attrs = p.p_attrs @ [ (name, v) ] }) values
    | Strategy l -> List.map (fun s -> { p with p_strategy = s }) l
    | Clock l -> List.map (fun c -> { p with p_clock = c }) l
    | Delay l -> List.map (fun d -> { p with p_delay = d }) l
  in
  List.fold_left
    (fun pts axis -> List.concat_map (fun p -> apply p axis) pts)
    [ seed ] axes

(* ------------------------------------------------------------------ *)
(* Point -> request                                                    *)
(* ------------------------------------------------------------------ *)

let point_constraints p =
  { Sizing.default_constraints with
    Sizing.clock_width = p.p_clock;
    comb_delays = (match p.p_delay with Some d -> [ ("*", d) ] | None -> []);
    strategy = p.p_strategy }

let point_spec p =
  Icdb.Spec.make
    ~constraints:(point_constraints p)
    (Icdb.Spec.From_component
       { component = p.p_component; attributes = p.p_attrs; functions = [] })

let point_key p = Icdb.Spec.cache_key (point_spec p)

(* Decimal float literal the CQL lexer can read back (no exponent). *)
let float_token f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if String.contains s 'e' || String.contains s 'E' then
      Printf.sprintf "%.17f" f
    else s

let attrs_token attrs =
  "("
  ^ String.concat ", "
      (List.map (fun (n, v) -> Printf.sprintf "%s:%d" n v) attrs)
  ^ ")"

(* The request_component command a remote driver sends for this point.
   The spec it denotes is exactly [point_spec]: the CQL executor reads
   clock_width/comb_delay/strategy into the same constraint record. *)
let point_cql p =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "command:request_component";
  Buffer.add_string buf ("; component_name:" ^ p.p_component);
  if p.p_attrs <> [] then
    Buffer.add_string buf ("; attribute:" ^ attrs_token p.p_attrs);
  (match p.p_clock with
  | Some c -> Buffer.add_string buf ("; clock_width:" ^ float_token c)
  | None -> ());
  (match p.p_delay with
  | Some d -> Buffer.add_string buf ("; comb_delay:" ^ float_token d)
  | None -> ());
  (match p.p_strategy with
  | Sizing.Balanced -> ()  (* the default; CQL has no name for it *)
  | s -> Buffer.add_string buf ("; strategy:" ^ strategy_name s));
  Buffer.add_string buf "; instance:?s; degraded:?s; cache:?s";
  Buffer.contents buf

let attrs_string attrs =
  String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) attrs)

let point_to_string p =
  Printf.sprintf "%s[%s]%s%s strategy=%s" p.p_component (attrs_string p.p_attrs)
    (match p.p_clock with
    | Some c -> Printf.sprintf " clock<=%s" (float_token c)
    | None -> "")
    (match p.p_delay with
    | Some d -> Printf.sprintf " delay<=%s" (float_token d)
    | None -> "")
    (strategy_name p.p_strategy)
