(* Sweep execution: walk a lattice of request points against a local
   server or a remote daemon, persisting every completed point into the
   exploration store as it lands. Resume-safe by construction: points
   whose spec key is already persisted are skipped, so kill-and-rerun
   only pays for unfinished work. *)

module Event = Icdb_obs.Event
module Metrics = Icdb_obs.Metrics

exception Driver_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Driver_error s)) fmt

type backend =
  | Local of Icdb.Server.t
  | Remote of { client : Icdb_net.Client.t; batch : int; inflight : int }

type progress = {
  pr_total : int;     (* points in the sweep *)
  pr_done : int;      (* executed or failed, this run *)
  pr_skipped : int;   (* already persisted (or duplicate key) *)
  pr_failed : int;
  pr_eta_s : float option;
}

type failure = { f_point : Axis.point; f_reason : string }

type summary = {
  s_total : int;
  s_executed : int;
  s_skipped : int;
  s_failures : failure list;
}

let c_executed = lazy (Metrics.counter "explore.points.executed")
let c_skipped = lazy (Metrics.counter "explore.points.skipped")
let c_failed = lazy (Metrics.counter "explore.points.failed")

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Shared bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

type run_state = {
  store : Store.t;
  sweep : string;
  total : int;
  to_run : int;              (* points this run will execute *)
  started : float;
  mutable done_ : int;
  mutable skipped : int;
  mutable failures : failure list;
  on_progress : (progress -> unit) option;
}

let report st =
  match st.on_progress with
  | None -> ()
  | Some f ->
      let eta =
        if st.done_ = 0 then None
        else
          let elapsed = now () -. st.started in
          let remaining = st.to_run - st.done_ in
          Some (elapsed /. float_of_int st.done_ *. float_of_int remaining)
      in
      f
        { pr_total = st.total;
          pr_done = st.done_;
          pr_skipped = st.skipped;
          pr_failed = List.length st.failures;
          pr_eta_s = eta }

let record_result st r =
  Store.add st.store ~sweep:st.sweep r;
  st.done_ <- st.done_ + 1;
  Metrics.incr (Lazy.force c_executed);
  report st

let record_failure st p reason =
  st.failures <- { f_point = p; f_reason = reason } :: st.failures;
  st.done_ <- st.done_ + 1;
  Metrics.incr (Lazy.force c_failed);
  Event.warn "explore: point failed: %s: %s" (Axis.point_to_string p) reason;
  report st

(* ------------------------------------------------------------------ *)
(* Local backend                                                       *)
(* ------------------------------------------------------------------ *)

let exec_local server ~power p =
  let t0 = now () in
  let res = Icdb_cql.Exec.run server (Axis.point_cql p) in
  let id = Icdb_cql.Exec.get_string res "instance" in
  let cache = Icdb_cql.Exec.get_string res "cache" in
  let degraded = Icdb_cql.Exec.get_string res "degraded" = "yes" in
  let inst = Icdb.Server.find_instance server id in
  let pw =
    if power then
      (Lazy.force inst.Icdb.Instance.power).Icdb_timing.Power.dynamic_mw
    else 0.0
  in
  { Store.r_point = p;
    r_instance = id;
    r_area = Icdb.Instance.best_area inst;
    r_delay = Icdb.Instance.worst_delay inst;
    r_power = pw;
    r_gates = Icdb.Instance.gate_count inst;
    r_cache = cache;
    r_latency_s = now () -. t0;
    r_degraded = degraded;
    r_constraints_met = inst.Icdb.Instance.constraints_met }

let run_local st server ~power pending =
  List.iter
    (fun p ->
      match exec_local server ~power p with
      | r -> record_result st r
      | exception
          (( Icdb.Server.Icdb_error _ | Icdb_cql.Exec.Cql_error _
           | Icdb_timing.Sta.Timing_error _ ) as e) ->
          record_failure st p (Printexc.to_string e))
    pending

(* ------------------------------------------------------------------ *)
(* Remote backend: pipelined wire-v4 batches                           *)
(* ------------------------------------------------------------------ *)

(* Each chunk of points takes two batch round trips: one Batch of
   request_component entries, then one Batch of instance_query entries
   fetching the figures of the instances stage one produced. Up to
   [inflight] batch frames ride the connection at once
   (Client.call_async), so the server's worker pool stays busy while
   replies stream back. Per-point latency is the chunk's wall time
   divided by its size — amortized, as batching intends. *)

let instance_query_cql ~power =
  "command:instance_query; instance:%s; area_value:?r; delay_value:?r; \
   gates:?d; constraints_met:?s; degraded:?s"
  ^ (if power then "; power_value:?r" else "")

type stage_b_meta = {
  m_point : Axis.point;
  m_instance : string;
  m_cache : string;
  m_degraded : bool;
}

type outstanding =
  | Stage_a of Icdb_net.Client.ticket * Axis.point list * float
  | Stage_b of Icdb_net.Client.ticket * stage_b_meta list * float * int
      (* sent time of stage A, original chunk size (for amortization) *)

let get_result results key =
  match List.assoc_opt key results with
  | Some r -> r
  | None -> fail "remote reply is missing %s" key

let get_str results key =
  match get_result results key with
  | Icdb_cql.Exec.Rstr s -> s
  | _ -> fail "remote reply: %s is not a string" key

let get_num results key =
  match get_result results key with
  | Icdb_cql.Exec.Rfloat f -> f
  | Icdb_cql.Exec.Rint i -> float_of_int i
  | _ -> fail "remote reply: %s is not numeric" key

(* Deep pipelining has a failure mode the local path doesn't: the
   service deadlines every request at enqueue (min of the client's
   timeout and the server's request_timeout_s), so a frame of expensive
   cold points — or a frame queued behind several inflight ones — can
   blow its deadline before some entries even run. Those per-entry
   Timeout errors are retryable by construction (finished work is
   cached server-side), so the driver collects them and reruns each in
   its own single-entry frame with a fresh deadline; only a point that
   times out alone is a real failure. *)
let rec run_remote st client ~power ~batch ~inflight ~retrying pending =
  let chunks = Queue.create () in
  let rec chop = function
    | [] -> ()
    | l ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (k - 1) (x :: acc) rest
        in
        let chunk, rest = take batch [] l in
        Queue.push chunk chunks;
        chop rest
  in
  chop pending;
  let outstanding = Queue.create () in
  let send_stage_a chunk =
    let entries =
      List.map
        (fun p -> Icdb_net.Wire.Bcql { text = Axis.point_cql p; args = [] })
        chunk
    in
    let ticket = Icdb_net.Client.call_async client (Icdb_net.Wire.Batch entries) in
    Queue.push (Stage_a (ticket, chunk, now ())) outstanding
  in
  let send_stage_b metas t0 chunk_size =
    let entries =
      List.map
        (fun m ->
          Icdb_net.Wire.Bcql
            { text = instance_query_cql ~power;
              args = [ Icdb_cql.Exec.Astr m.m_instance ] })
        metas
    in
    let ticket = Icdb_net.Client.call_async client (Icdb_net.Wire.Batch entries) in
    Queue.push (Stage_b (ticket, metas, t0, chunk_size)) outstanding
  in
  let batch_reply ticket =
    match Icdb_net.Client.await client ticket with
    | Icdb_net.Wire.Batch_reply results -> Ok results
    | Icdb_net.Wire.Error { code; message } ->
        Error
          ( code,
            Printf.sprintf "batch refused: %s: %s"
              (Icdb_net.Wire.error_code_to_string code) message )
    | _ -> fail "remote sent an unexpected reply to a batch"
  in
  let retry = ref [] in
  let retryable code = (not retrying) && code = Icdb_net.Wire.Timeout in
  let entry_failed p code message =
    if retryable code then retry := p :: !retry
    else
      record_failure st p
        (Printf.sprintf "%s: %s"
           (Icdb_net.Wire.error_code_to_string code) message)
  in
  let fill_window () =
    while
      Queue.length outstanding < inflight && not (Queue.is_empty chunks)
    do
      send_stage_a (Queue.pop chunks)
    done
  in
  fill_window ();
  while not (Queue.is_empty outstanding) do
    (match Queue.pop outstanding with
    | Stage_a (ticket, chunk, t0) -> (
        match batch_reply ticket with
        | Error (code, reason) ->
            List.iter (fun p -> entry_failed p code reason) chunk
        | Ok results ->
            if List.length results <> List.length chunk then
              fail "remote batch reply arity mismatch";
            let metas =
              List.filter_map
                (fun (p, res) ->
                  match res with
                  | Icdb_net.Wire.Berror { code; message } ->
                      entry_failed p code message;
                      None
                  | Icdb_net.Wire.Bresults r ->
                      Some
                        { m_point = p;
                          m_instance = get_str r "instance";
                          m_cache = get_str r "cache";
                          m_degraded = get_str r "degraded" = "yes" }
                  | Icdb_net.Wire.Bsql_result _ ->
                      fail "remote answered CQL with a SQL result")
                (List.combine chunk results)
            in
            if metas <> [] then send_stage_b metas t0 (List.length chunk))
    | Stage_b (ticket, metas, t0, chunk_size) -> (
        match batch_reply ticket with
        | Error (code, reason) ->
            List.iter (fun m -> entry_failed m.m_point code reason) metas
        | Ok results ->
            if List.length results <> List.length metas then
              fail "remote batch reply arity mismatch";
            let latency = (now () -. t0) /. float_of_int (max 1 chunk_size) in
            List.iter2
              (fun m res ->
                match res with
                | Icdb_net.Wire.Berror { code; message } ->
                    entry_failed m.m_point code message
                | Icdb_net.Wire.Bresults r ->
                    record_result st
                      { Store.r_point = m.m_point;
                        r_instance = m.m_instance;
                        r_area = get_num r "area_value";
                        r_delay = get_num r "delay_value";
                        r_power = (if power then get_num r "power_value" else 0.0);
                        r_gates = int_of_float (get_num r "gates");
                        r_cache = m.m_cache;
                        r_latency_s = latency;
                        r_degraded = m.m_degraded;
                        r_constraints_met =
                          get_str r "constraints_met" = "yes" }
                | Icdb_net.Wire.Bsql_result _ ->
                    fail "remote answered CQL with a SQL result")
              metas results));
    fill_window ()
  done;
  if !retry <> [] then begin
    let pts = List.rev !retry in
    Event.info
      "explore: retrying %d timed-out points in single-entry frames"
      (List.length pts);
    run_remote st client ~power ~batch:1 ~inflight:1 ~retrying:true pts
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(power = false) ?limit ?on_progress ~sweep backend store points =
  let total = List.length points in
  let persisted = Store.persisted_keys store ~sweep in
  (* In-run dedup on top of the resume set: distinct lattice points can
     canonicalize to the same spec. *)
  let seen = Hashtbl.copy persisted in
  let skipped = ref 0 in
  let pending =
    List.filter
      (fun p ->
        let key = Axis.point_key p in
        if Hashtbl.mem seen key then begin
          incr skipped;
          false
        end
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      points
  in
  let pending =
    match limit with
    | None -> pending
    | Some n ->
        let rec take k = function
          | [] -> []
          | _ when k <= 0 -> []
          | x :: rest -> x :: take (k - 1) rest
        in
        take n pending
  in
  let st =
    { store;
      sweep;
      total;
      to_run = List.length pending;
      started = now ();
      done_ = 0;
      skipped = !skipped;
      failures = [];
      on_progress }
  in
  Metrics.incr ~by:!skipped (Lazy.force c_skipped);
  Event.info "explore: sweep %s: %d points, %d already persisted, running %d"
    sweep total !skipped st.to_run;
  report st;
  (match backend with
  | Local server -> run_local st server ~power pending
  | Remote { client; batch; inflight } ->
      if batch <= 0 then fail "batch size must be positive";
      if inflight <= 0 then fail "inflight window must be positive";
      run_remote st client ~power ~batch ~inflight ~retrying:false pending);
  Event.info "explore: sweep %s done: %d executed, %d skipped, %d failed"
    sweep
    (st.done_ - List.length st.failures)
    st.skipped (List.length st.failures);
  { s_total = total;
    s_executed = st.done_ - List.length st.failures;
    s_skipped = st.skipped;
    s_failures = List.rev st.failures }
