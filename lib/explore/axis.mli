(** Sweep lattices: explicit, bounded axes over a component's
    attribute/constraint space, expanded into concrete request points
    (the DB4HLS design-space shape). *)

open Icdb_timing

exception Axis_error of string

type axis =
  | Attr of { name : string; values : int list }
      (** integer component attribute (size, strips, latch flags, ...) *)
  | Strategy of Sizing.strategy list
  | Clock of float option list
      (** clock-width upper bounds, ns; [None] = unconstrained *)
  | Delay of float option list
      (** worst-delay bound applied to every output; [None] = none *)

type point = {
  p_component : string;
  p_attrs : (string * int) list;  (** in axis order *)
  p_strategy : Sizing.strategy;
  p_clock : float option;
  p_delay : float option;
}

val max_axis_values : int
val max_points : int

val parse : string -> axis
(** Parse one axis spec, ["name=values"]:
    [size=2..9], [size=2..16..2], [size=2,4,8],
    [strategy=fastest,cheapest,balanced], [clock=10,20,none],
    [delay=5,7.5,none].
    @raise Axis_error on malformed specs, empty axes, or axes longer
    than {!max_axis_values}. *)

val axis_name : axis -> string
val axis_length : axis -> int

val expand : component:string -> axis list -> point list
(** Deterministic cartesian product: the first axis varies slowest,
    values in declaration order.
    @raise Axis_error on duplicate axes or more than {!max_points}
    points. *)

val point_constraints : point -> Sizing.constraints

val point_spec : point -> Icdb.Spec.t
(** The canonical specification this point requests. *)

val point_key : point -> string
(** [Spec.cache_key (point_spec p)]: the stable identity under which
    the point's result is persisted and resume-deduplicated. *)

val point_cql : point -> string
(** The [request_component] command a remote driver sends for this
    point; denotes exactly {!point_spec} and asks for
    [instance:?s; degraded:?s; cache:?s]. *)

val strategy_name : Sizing.strategy -> string
val strategy_of_name : string -> Sizing.strategy

val attrs_string : (string * int) list -> string
(** ["size=4,output_latch=1"] — the form persisted in the store. *)

val point_to_string : point -> string
(** Human-readable one-liner for progress and error reporting. *)
