(** The persistent [exploration] relation: one row per swept design
    point, write-ahead-journaled through {!Icdb_reldb.Db} so a killed
    sweep resumes from exactly the points it had persisted.

    Columns: [spec_key, sweep, component, attrs, strategy, clock_bound,
    delay_bound, instance, area, delay, power, gates, cache, latency_s,
    degraded, constraints_met]. [clock_bound]/[delay_bound] store [0.0]
    for "unconstrained"; [power] stores [0.0] when power simulation was
    not requested. [spec_key], [sweep] and [component] carry secondary
    indexes, re-declared on every open (indexes are derived state and
    are never journaled). *)

open Icdb_reldb

exception Store_error of string

type t

type result = {
  r_point : Axis.point;
  r_instance : string;
  r_area : float;
  r_delay : float;
  r_power : float;   (** dynamic power, mW; 0.0 when not simulated *)
  r_gates : int;
  r_cache : string;  (** "hit" | "reuse" | "miss" *)
  r_latency_s : float;
  r_degraded : bool;
  r_constraints_met : bool;
}

val table_name : string
val schema : Table.schema

val open_ : string -> t
(** Open (creating the directory if needed) a store rooted at a
    directory: recover [explore.db] + [explore.journal], attach the
    journal, create the [exploration] table if missing, declare the
    indexes, and recompute table statistics (like the indexes, derived
    state the planner consults).
    @raise Store_error when an existing table's schema is
    incompatible. *)

val close : t -> unit

val db : t -> Db.t
val dir : t -> string
val table : t -> Table.t

val add : t -> sweep:string -> result -> unit
(** Journaled insert of one completed point. *)

val persisted_keys : t -> sweep:string -> (string, unit) Hashtbl.t
(** Spec keys already persisted for a sweep — the resume set. Served by
    the [sweep] index. *)

val count : t -> sweep:string -> int
val cardinality : t -> int

val checkpoint : t -> unit
(** Absorb the journal into the snapshot (atomic), truncating it. *)

val query : t -> string -> Sql.result
(** Run one SQL statement (including [PARETO]/[DOMINATED]) against the
    store's database. *)
