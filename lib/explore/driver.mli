(** Sweep execution over a lattice of request points, against a local
    {!Icdb.Server} or a remote daemon through the pipelined wire-v4
    batch path. Every completed point is persisted into the
    {!Store} as it lands; points whose spec key is already persisted
    are skipped, so a killed sweep resumes without recomputing finished
    work. *)

exception Driver_error of string

type backend =
  | Local of Icdb.Server.t
  | Remote of { client : Icdb_net.Client.t; batch : int; inflight : int }
      (** [batch] points per wire-v4 Batch frame, up to [inflight]
          frames outstanding on the connection at once *)

type progress = {
  pr_total : int;       (** points in the sweep *)
  pr_done : int;        (** executed or failed, this run *)
  pr_skipped : int;     (** already persisted, or duplicate spec key *)
  pr_failed : int;
  pr_eta_s : float option;  (** estimated seconds remaining *)
}

type failure = { f_point : Axis.point; f_reason : string }

type summary = {
  s_total : int;
  s_executed : int;
  s_skipped : int;
  s_failures : failure list;
}

val run :
  ?power:bool ->
  ?limit:int ->
  ?on_progress:(progress -> unit) ->
  sweep:string ->
  backend ->
  Store.t ->
  Axis.point list ->
  summary
(** Execute the not-yet-persisted points of a sweep. [power] (default
    false) additionally simulates and records dynamic power — costly,
    off by default. [limit] caps how many points this run executes
    (partial runs; the rest persist on the next run). [on_progress]
    fires after every completed point and once at start.

    Per-point failures (generation errors, per-entry batch errors) are
    recorded in the summary and do not abort the sweep; transport
    failures ([Icdb_net.Client.Net_error]) propagate — already-persisted
    points survive for the next run. Remote per-entry [Timeout] errors
    — a deep pipeline of cold points can outrun the service's
    enqueue-anchored deadline — are retried once in single-entry
    frames before being recorded as failures. *)
