(* Deterministic fault injection for the crash-recovery and degradation
   tests.

   The server calls [hit site] at each dangerous point of the
   generation pipeline; an armed site counts hits and, at the configured
   one, either raises a classified [Fault.Fault] (exercising the retry
   and degradation paths) or raises [Crash] (simulating the process
   dying mid-operation — tests catch it, abandon the server value, and
   assert that [Server.reopen] restores a consistent state).

   Sites can be armed programmatically ([arm]/[disarm]) or through the
   ICDB_FAULT environment variable, e.g.

     ICDB_FAULT="file_write:crash:2"        crash on the 2nd file write
     ICDB_FAULT="sizing:transient:1;expand:crash:1"

   so CI can run the whole suite under injection without code changes. *)

type site =
  | File_write       (* between temp-file write and atomic rename *)
  | Journal_append   (* before a journal record reaches the log *)
  | Expand           (* IIF expansion *)
  | Techmap          (* generator synthesis (optimization + mapping) *)
  | Sizing           (* transistor sizing *)
  | Journal_stream   (* journal tail-read serving a replication batch *)
  | Repl_replay      (* follower applying one shipped journal record *)
  | Loop_stall       (* top of a service event-loop tick; armed hits
                        become sleeps, wedging the loop for the stall
                        watchdog tests *)

type mode =
  | Fail of int * Fault.kind  (* first n hits raise Fault (kind, _) *)
  | Crash_on of int           (* the nth hit raises Crash *)

exception Crash of site

let site_to_string = function
  | File_write -> "file_write"
  | Journal_append -> "journal_append"
  | Expand -> "expand"
  | Techmap -> "techmap"
  | Sizing -> "sizing"
  | Journal_stream -> "journal_stream"
  | Repl_replay -> "repl_replay"
  | Loop_stall -> "loop_stall"

let site_of_string = function
  | "file_write" -> Some File_write
  | "journal_append" -> Some Journal_append
  | "expand" -> Some Expand
  | "techmap" -> Some Techmap
  | "sizing" -> Some Sizing
  | "journal_stream" -> Some Journal_stream
  | "repl_replay" -> Some Repl_replay
  | "loop_stall" -> Some Loop_stall
  | _ -> None

let all_sites =
  [ File_write; Journal_append; Expand; Techmap; Sizing; Journal_stream;
    Repl_replay; Loop_stall ]

let armed : (site, mode * int ref) Hashtbl.t = Hashtbl.create 8

let arm site mode = Hashtbl.replace armed site (mode, ref 0)

let disarm site = Hashtbl.remove armed site

let reset () = Hashtbl.reset armed

let hits site =
  match Hashtbl.find_opt armed site with
  | Some (_, count) -> !count
  | None -> 0

let hit site =
  match Hashtbl.find_opt armed site with
  | None -> ()
  | Some (mode, count) ->
      incr count;
      (match mode with
       | Fail (times, kind) when !count <= times ->
           Fault.fault kind "injected %s fault at %s (hit %d)"
             (Fault.kind_to_string kind) (site_to_string site) !count
       | Crash_on n when !count = n -> raise (Crash site)
       | Fail _ | Crash_on _ -> ())

(* "site:mode:n[;site:mode:n...]" — mode is "crash" or a fault kind. *)
let arm_from_spec spec =
  String.split_on_char ';' spec
  |> List.iter (fun clause ->
         let clause = String.trim clause in
         if clause <> "" then
           match String.split_on_char ':' clause with
           | [ s; m; n ] -> (
               let site =
                 match site_of_string (String.trim s) with
                 | Some site -> site
                 | None -> invalid_arg ("ICDB_FAULT: unknown site " ^ s)
               in
               let n =
                 match int_of_string_opt (String.trim n) with
                 | Some n when n >= 1 -> n
                 | _ -> invalid_arg ("ICDB_FAULT: bad hit count " ^ n)
               in
               match String.trim m with
               | "crash" -> arm site (Crash_on n)
               | "transient" -> arm site (Fail (n, Fault.Transient))
               | "corrupt" -> arm site (Fail (n, Fault.Corrupt))
               | "invalid" -> arm site (Fail (n, Fault.Invalid_input))
               | "resource" -> arm site (Fail (n, Fault.Resource))
               | m -> invalid_arg ("ICDB_FAULT: unknown mode " ^ m))
           | _ ->
               invalid_arg
                 ("ICDB_FAULT: expected site:mode:n, got " ^ clause))

let init_from_env () =
  match Sys.getenv_opt "ICDB_FAULT" with
  | Some spec when String.trim spec <> "" -> arm_from_spec spec
  | _ -> ()
