(* The ICDB component server (§2).

   Serves components to synthesis tools: given attributes and
   constraints it dynamically generates component instances through the
   full generation path of Figure 8 (IIF expansion, logic optimization,
   technology mapping, transistor sizing, delay and shape estimation)
   and answers queries about implementations and generated instances.

   Metadata lives in the relational engine (the INGRES role); bulk
   design data (IIF sources, VHDL netlists, CIF layouts) lives in plain
   files under a workspace directory (the UNIX-file-system role), and
   tools fetch file names from the database, exactly as §2.3 describes.

   Durability: a durable server journals every dynamic database
   mutation (Journal/Db.replay_journal) and writes every workspace file
   atomically (temp + rename), so [reopen] can reconstruct the full
   server state after a crash at any point. The static catalog and the
   builtin component library are deterministic and are rebuilt by
   bootstrap rather than journaled. *)

open Icdb_iif
open Icdb_logic
open Icdb_netlist
open Icdb_timing
open Icdb_layout
open Icdb_reldb
open Icdb_genus

exception Icdb_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Icdb_error s)) fmt

module Metrics = Icdb_obs.Metrics
module Trace = Icdb_obs.Trace
module Event = Icdb_obs.Event

(* Process-wide instruments (lib/obs). Counters are always live — a
   bump is one mutable-field update; spans cost one branch unless
   tracing is enabled. *)
let m_requests = Metrics.counter "server.requests"
let m_request_errors = Metrics.counter "server.request_errors"
let m_cache_hit = Metrics.counter "cache.hit"
let m_cache_reuse = Metrics.counter "cache.reuse_hit"
let m_cache_miss = Metrics.counter "cache.miss"
let m_memo_hit = Metrics.counter "memo.hit"
let m_memo_miss = Metrics.counter "memo.miss"
let m_ws_retry = Metrics.counter "workspace.collision_retry"
let m_degraded = Metrics.counter "server.degraded_instances"

(* Faults escaping the pipeline surface to callers as Icdb_error; an
   injected Crash is never converted — it simulates the process dying. *)
let fault_boundary f =
  try f () with
  | Fault.Fault (kind, msg) ->
      Event.emit Event.Error
        ~fields:[ ("fault", Fault.kind_to_string kind); ("detail", msg) ]
        "fault escaped the generation pipeline";
      fail "%s fault: %s" (Fault.kind_to_string kind) msg

let () =
  Journal.append_hook := (fun () -> Faultinject.hit Faultinject.Journal_append);
  Journal.stream_hook := (fun () -> Faultinject.hit Faultinject.Journal_stream)

type design_book = {
  mutable kept : string list;          (* instances in the component list *)
  mutable tx_created : string list option;  (* instances made in the open tx *)
}

(* One traced request retained for `icdb stats`: the canonical spec
   key, how long it took end to end, and where the time went. *)
type slow_request = {
  sr_key : string;
  sr_id : string;                    (* instance id it resolved to *)
  sr_seconds : float;
  sr_phases : (string * float) list; (* span name -> total seconds *)
}

type t = {
  db : Db.t;
  workspace : string;
  registry : (string, Ast.design) Hashtbl.t;   (* IIF implementations *)
  generators : (string, Generator.t) Hashtbl.t;(* tool management (§4.2) *)
  instances : (string, Instance.t) Hashtbl.t;  (* id -> instance *)
  cache : (string, string) Lru.t;              (* exact spec key -> id *)
  by_struct : (string, string list ref) Hashtbl.t;
      (* structural key -> ids, oldest first: the §3.3 reuse index *)
  synth_memo : (string, Netlist.t) Lru.t;
      (* flat fingerprint / preferred generator -> verified netlist *)
  designs : (string, design_book) Hashtbl.t;   (* component lists (App B §7) *)
  mutable seq : int;
  mutable hits : int;        (* exact-key cache hits *)
  mutable reuse_hits : int;  (* §3.3 figure-based reuse hits *)
  mutable misses : int;      (* requests that ran the generation path *)
  mutable memo_hits : int;   (* synthesis memo hits *)
  mutable memo_misses : int;
  phase_hist : (string, Metrics.histogram) Hashtbl.t;
      (* per-server latency histogram per span name; filled only while
         tracing is enabled *)
  mutable slow : slow_request list;  (* slowest traced requests, desc *)
  verify : bool;  (* simulate generated netlists against their IIF spec *)
  durable : bool; (* journal + snapshot live in the workspace *)
}

let slow_capacity = 8

type stats = {
  st_hits : int;
  st_reuse_hits : int;
  st_misses : int;
  st_evictions : int;
  st_entries : int;
  st_memo_hits : int;
  st_memo_misses : int;
  st_phases : Metrics.summary list;
      (* per-phase latency (p50/p90/p99), one entry per span name seen
         by this server; empty until a request runs with tracing on *)
  st_slow : slow_request list;  (* slowest traced requests, desc *)
}

let stats t =
  { st_hits = t.hits;
    st_reuse_hits = t.reuse_hits;
    st_misses = t.misses;
    st_evictions = Lru.evictions t.cache;
    st_entries = Lru.length t.cache;
    st_memo_hits = t.memo_hits;
    st_memo_misses = t.memo_misses;
    st_phases =
      Hashtbl.fold (fun _ h acc -> Metrics.summary h :: acc) t.phase_hist []
      |> List.sort (fun a b ->
             String.compare a.Metrics.s_name b.Metrics.s_name);
    st_slow = t.slow }

let default_cache_capacity = 512

type recovery_report = {
  rr_entries_replayed : int;   (* journal entries re-applied *)
  rr_torn_tail : bool;         (* a torn/corrupt journal tail was cut *)
  rr_rolled_back_tx : bool;    (* an uncommitted App B §7 tx was undone *)
  rr_instances : string list;  (* instance ids reconstructed *)
  rr_dropped : (Fault.kind * string) list;
      (* rows dropped, each with its fault classification — [Corrupt]
         for damaged artifacts, [Resource] for unreadable ones — so
         callers can react per class instead of parsing strings *)
  rr_orphans : string list;    (* stray workspace files removed *)
}

(* ------------------------------------------------------------------ *)
(* Creation and knowledge acquisition                                  *)
(* ------------------------------------------------------------------ *)

let ws_journal ws = Filename.concat ws "icdb.journal"
let ws_snapshot ws = Filename.concat ws "icdb.snapshot"

let ws_counter = ref 0

(* Workspace names must be unique across *processes*, not just within
   one: pids recycle, and OCaml's default [Random] state is
   deterministic, so two boots that happen to share a recycled pid
   would walk the exact same pid/counter/tag sequence. The tag
   therefore comes from a private state seeded off the wall clock and
   pid; [Unix.mkdir] has O_EXCL semantics (it fails with EEXIST instead
   of adopting an existing directory), so losing the race is detected,
   counted, and retried with a fresh tag. *)
let ws_rng =
  lazy
    (Random.State.make
       [| Unix.getpid ();
          int_of_float (Unix.gettimeofday () *. 1e6) land 0x3FFFFFFF |])

let fresh_workspace () =
  let tmp = Filename.get_temp_dir_name () in
  let rec attempt tries =
    incr ws_counter;
    let dir =
      Filename.concat tmp
        (Printf.sprintf "icdb_ws_%d_%d_%06x" (Unix.getpid ()) !ws_counter
           (Random.State.bits (Lazy.force ws_rng) land 0xFFFFFF))
    in
    match Unix.mkdir dir 0o755 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when tries < 1000 ->
        Metrics.incr m_ws_retry;
        Event.emit Event.Warn
          ~fields:[ ("dir", dir) ]
          "workspace name collision; retrying with a fresh tag";
        attempt (tries + 1)
  in
  attempt 0

(* Atomic workspace write: the file either keeps its old contents or
   carries the complete new ones — a crash in between leaves only a
   ".tmp" orphan that reopen sweeps up. *)
(* [on_retry] hook shared by every bounded-retry site: the degradation
   trail becomes structured warn events instead of silence. *)
let log_retry what attempt msg =
  Event.emit Event.Warn
    ~fields:
      [ ("site", what); ("attempt", string_of_int attempt); ("detail", msg) ]
    "transient fault; retrying"

let write_file t name contents =
  let path = Filename.concat t.workspace name in
  let tmp = path ^ ".tmp" in
  Fault.with_retry ~on_retry:(log_retry "write_file") (fun () ->
      (try
         let oc = open_out tmp in
         Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
             output_string oc contents)
       with Sys_error msg -> Fault.fault Fault.Resource "writing %s: %s" tmp msg);
      Faultinject.hit Faultinject.File_write;
      (try Sys.rename tmp path
       with Sys_error msg ->
         Fault.fault Fault.Resource "renaming %s: %s" tmp msg);
      path)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let setup_tables db =
  ignore
    (Db.create_table db "components"
       [ ("name", Value.Tstr); ("implementation", Value.Tstr) ]);
  ignore
    (Db.create_table db "component_functions"
       [ ("component", Value.Tstr); ("func", Value.Tstr) ]);
  ignore
    (Db.create_table db "implementations"
       [ ("name", Value.Tstr); ("format", Value.Tstr); ("file", Value.Tstr) ]);
  ignore
    (Db.create_table db "instances"
       [ ("id", Value.Tstr); ("component", Value.Tstr); ("gates", Value.Tint);
         ("area", Value.Tfloat); ("clock_width", Value.Tfloat);
         ("constraints_met", Value.Tbool); ("file", Value.Tstr);
         ("degraded", Value.Tbool); ("spec_key", Value.Tstr) ])

let workspace t = t.workspace

let db t = t.db

(* Register an IIF implementation: parse, remember, record in the
   database and keep the source in the workspace (knowledge acquisition
   of §2.2). *)
let insert_implementation t name source =
  fault_boundary @@ fun () ->
  let design =
    try Parser.parse source with
    | Parser.Parse_error (msg, line) ->
        fail "implementation %s: parse error at line %d: %s" name line msg
    | Lexer.Lex_error (msg, line) ->
        fail "implementation %s: lex error at line %d: %s" name line msg
  in
  Hashtbl.replace t.registry name design;
  let file = write_file t (name ^ ".iif") source in
  Db.insert t.db "implementations"
    [ Value.Str name; Value.Str "IIF"; Value.Str file ];
  design

(* The generic component library and the catalog rows are deterministic
   knowledge, so they are rebuilt by both [create] and [reopen] (with
   the journal detached) instead of being journaled. *)
let bootstrap_static t =
  List.iter
    (fun (name, source) -> ignore (insert_implementation t name source))
    Builtin.sources;
  List.iter
    (fun (c : Component.t) ->
      Db.insert t.db "components"
        [ Value.Str c.Component.comp_name; Value.Str c.Component.implementation ];
      List.iter
        (fun f ->
          Db.insert t.db "component_functions"
            [ Value.Str c.Component.comp_name; Value.Str (Func.to_string f) ])
        (c.Component.functions_of []))
    Component.all

let register_builtin_generators t =
  List.iter
    (fun g -> Hashtbl.replace t.generators g.Generator.gen_name g)
    Generator.builtins

let create ?(verify = true) ?workspace ?(durable = false)
    ?(cache_capacity = default_cache_capacity) () =
  let workspace =
    match workspace with
    | Some w ->
        if not (Sys.file_exists w) then Unix.mkdir w 0o755;
        w
    | None -> fresh_workspace ()
  in
  if durable && Sys.file_exists (ws_journal workspace) then
    fail "workspace %s already has a journal; use reopen to recover it"
      workspace;
  let db = Db.create () in
  setup_tables db;
  let t =
    { db; workspace;
      registry = Hashtbl.create 32;
      generators = Hashtbl.create 4;
      instances = Hashtbl.create 64;
      cache = Lru.create cache_capacity;
      by_struct = Hashtbl.create 64;
      synth_memo = Lru.create cache_capacity;
      designs = Hashtbl.create 8;
      seq = 0;
      hits = 0; reuse_hits = 0; misses = 0;
      memo_hits = 0; memo_misses = 0;
      phase_hist = Hashtbl.create 16;
      slow = [];
      verify;
      durable }
  in
  register_builtin_generators t;
  bootstrap_static t;
  if durable then Db.attach_journal db (Journal.open_append (ws_journal workspace));
  t

(* ------------------------------------------------------------------ *)
(* Catalog queries (§3.2.1)                                            *)
(* ------------------------------------------------------------------ *)

(* Components performing all of [funcs], via the SQL layer. Values are
   quoted with Sql.quote_string: a function name is attacker-ish input
   (it may come straight off the CQL wire) and must never splice into
   the statement text. *)
let function_query t funcs =
  match funcs with
  | [] -> List.map (fun c -> c.Component.comp_name) Component.all
  | funcs ->
      let matching f =
        let rel =
          Sql.select t.db
            (Printf.sprintf
               "SELECT component FROM component_functions WHERE func = %s"
               (Sql.quote_string (Func.to_string f)))
        in
        Query.column_values rel "component"
        |> List.map Value.to_string
      in
      let sets = List.map matching funcs in
      (match sets with
       | [] -> []
       | first :: rest ->
           List.filter
             (fun c -> List.for_all (List.mem c) rest)
             (List.sort_uniq String.compare first))

(* Implementations able to perform the functions (via their catalog
   components). *)
let implementation_query t funcs =
  function_query t funcs
  |> List.filter_map (fun name ->
         Option.map
           (fun c -> c.Component.implementation)
           (Component.find name))
  |> List.sort_uniq String.compare

(* Functions a component (or one of its implementations) performs. *)
let component_query t name =
  ignore t;
  match Component.find name with
  | Some c -> c.Component.functions_of []
  | None -> (
      (* maybe an implementation name *)
      match
        List.find_opt
          (fun c -> c.Component.implementation = name)
          Component.all
      with
      | Some c -> c.Component.functions_of []
      | None -> fail "unknown component %s" name)

(* ------------------------------------------------------------------ *)
(* Generation (§3.2.2, Figure 8)                                       *)
(* ------------------------------------------------------------------ *)

let lookup_design t name =
  match Hashtbl.find_opt t.registry name with
  | Some d -> Some d
  | None -> None

let expand_design t design params =
  Trace.with_span "expand" @@ fun () ->
  Trace.add_attr "design" design.Ast.dname;
  let flat =
    Fault.with_retry ~on_retry:(log_retry "expand") (fun () ->
        Faultinject.hit Faultinject.Expand;
        try Expander.expand ~registry:(lookup_design t) design params with
        | Expander.Expand_error msg -> fail "expansion failed: %s" msg)
  in
  match Flat.validate flat with
  | [] -> flat
  | problems ->
      fail "%s: %s" flat.Flat.fname
        (String.concat "; " (List.map Flat.problem_to_string problems))

(* Knowledge-server side: register an additional component generator. *)
let insert_generator t g =
  Hashtbl.replace t.generators g.Generator.gen_name g

let generator_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.generators []
  |> List.sort String.compare

let generator_of t spec =
  match spec.Spec.generator with
  | None -> Generator.milo
  | Some name -> (
      match Hashtbl.find_opt t.generators name with
      | Some g -> g
      | None -> fail "unknown component generator %s" name)

let verify_instance flat netlist =
  let n_inputs = List.length flat.Flat.finputs in
  let sequential =
    List.exists Flat.is_sequential flat.Flat.fequations
  in
  if (not sequential) && n_inputs > 14 then ()  (* too wide to enumerate *)
  else
    match Icdb_sim.Equiv.check ~steps:120 flat netlist with
    | Icdb_sim.Equiv.Equivalent -> ()
    | m ->
        fail "generated netlist does not match its IIF specification: %s"
          (Icdb_sim.Equiv.result_to_string m)

(* The preferred generator first, then every other registered one in a
   deterministic order — the fallback chain for graceful degradation. *)
let generation_chain t spec =
  let preferred = generator_of t spec in
  let rank g =
    match g.Generator.gen_name with "milo" -> 0 | "direct" -> 1 | _ -> 2
  in
  let others =
    Hashtbl.fold (fun _ g acc -> g :: acc) t.generators []
    |> List.filter (fun g -> g.Generator.gen_name <> preferred.Generator.gen_name)
    |> List.sort (fun a b ->
           match compare (rank a) (rank b) with
           | 0 -> String.compare a.Generator.gen_name b.Generator.gen_name
           | c -> c)
  in
  preferred :: others

(* Synthesize with bounded retry (transient faults) and generator
   fallback: if the preferred generator fails — tool error, classified
   fault, or a netlist that does not verify — the next registered
   generator is tried, and success off the preferred path marks the
   instance degraded. An injected Crash always propagates: a dead
   process does not fall back. *)
let synthesize_with_fallback t spec flat =
  let attempt g =
    Trace.with_span ~attrs:[ ("generator", g.Generator.gen_name) ] "synthesize"
    @@ fun () ->
    Fault.with_retry ~on_retry:(log_retry "synthesize") (fun () ->
        Faultinject.hit Faultinject.Techmap;
        let netlist =
          try g.Generator.synthesize flat with
          | Techmap.Map_error msg -> fail "technology mapping failed: %s" msg
          | Network.Network_error msg ->
              fail "network construction failed: %s" msg
        in
        if t.verify then
          Trace.with_span "verify" (fun () -> verify_instance flat netlist);
        netlist)
  in
  let fallback_warn g msg =
    Event.emit Event.Warn
      ~fields:
        [ ("generator", g.Generator.gen_name); ("design", flat.Flat.fname);
          ("detail", msg) ]
      "generator failed; falling back to the next in the chain"
  in
  let rec go errors = function
    | [] ->
        fail "generation of %s failed on every generator: %s" flat.Flat.fname
          (String.concat "; " (List.rev errors))
    | g :: rest -> (
        match attempt g with
        | netlist -> (netlist, g.Generator.gen_name)
        | exception Faultinject.Crash s -> raise (Faultinject.Crash s)
        | exception Icdb_error msg ->
            fallback_warn g msg;
            go (Printf.sprintf "%s: %s" g.Generator.gen_name msg :: errors)
              rest
        | exception Fault.Fault (kind, msg) ->
            fallback_warn g msg;
            go
              (Printf.sprintf "%s: %s fault: %s" g.Generator.gen_name
                 (Fault.kind_to_string kind) msg
               :: errors)
              rest)
  in
  let chain =
    Trace.with_span "generator_select" (fun () -> generation_chain t spec)
  in
  let preferred = (List.hd chain).Generator.gen_name in
  let netlist, used = go [] chain in
  (netlist, used <> preferred)

(* Memoized synthesis: the expand→optimize→map→verify chain is a pure
   function of the flat design and the preferred generator, so its
   (immutable) netlist is cached by content fingerprint. Only clean
   results are kept — a degraded netlist came off the fallback path
   and the preferred generator deserves a retry next time. The memo is
   per-server: a fresh server always re-runs (and re-verifies) the
   pipeline. *)
let synthesize_memo t spec flat =
  let mkey =
    Flat.fingerprint flat ^ "/" ^ (generator_of t spec).Generator.gen_name
  in
  match Lru.find t.synth_memo mkey with
  | Some netlist ->
      t.memo_hits <- t.memo_hits + 1;
      Metrics.incr m_memo_hit;
      Trace.add_attr "memo" "hit";
      (netlist, false)
  | None ->
      t.memo_misses <- t.memo_misses + 1;
      Metrics.incr m_memo_miss;
      let netlist, degraded = synthesize_with_fallback t spec flat in
      if not degraded then Lru.put t.synth_memo mkey netlist;
      (netlist, degraded)

(* Sizing failure degrades to the unsized netlist (constraints simply
   end up unmet) rather than aborting the request. *)
let size_with_degradation netlist constraints =
  match
    Fault.with_retry ~on_retry:(log_retry "sizing") (fun () ->
        Faultinject.hit Faultinject.Sizing;
        Sizing.size_to_constraints netlist constraints)
  with
  | sized -> (sized, false)
  | exception Faultinject.Crash s -> raise (Faultinject.Crash s)
  | exception (Fault.Fault _ | Icdb_error _ | Sta.Timing_error _) ->
      Event.emit Event.Warn
        ~fields:[ ("netlist", netlist.Netlist.name) ]
        "sizing failed; degrading to the unsized netlist";
      (netlist, true)

let next_id t base =
  t.seq <- t.seq + 1;
  Printf.sprintf "%s_%d" (String.lowercase_ascii base) t.seq

let functions_of_design design =
  List.map Func.of_string design.Ast.dfunctions

(* The paper relaxes unreachable constraints instead of failing
   (App B §5): we size best-effort and report whether the result meets
   the request. *)
let resolve_source t spec =
  match spec.Spec.source with
  | Spec.From_component { component; attributes; functions } -> (
      match Component.find component with
      | None -> fail "unknown component %s" component
      | Some c ->
          (* the five universal attributes (input/output polarity,
             latches, tri-state) apply to every component; the rest
             must belong to this one (App B §3) *)
          let universal, specific = Attributes.split attributes in
          Component.check_attributes c specific;
          let have = c.Component.functions_of specific in
          List.iter
            (fun f ->
              if not (List.exists (Func.equal f) have) then
                fail "component %s with these attributes cannot perform %s"
                  component (Func.to_string f))
            functions;
          let params = c.Component.params_of specific in
          let design =
            match lookup_design t c.Component.implementation with
            | Some d -> d
            | None -> fail "missing implementation %s" c.Component.implementation
          in
          let flat = expand_design t design params in
          let data_ports role =
            List.filter_map
              (fun (p : Component.port) ->
                if p.Component.role = role then Some p.Component.port_name
                else None)
              c.Component.ports
          in
          let flat =
            Attributes.apply flat universal
              ~data_inputs:(data_ports Component.Data_in)
              ~data_outputs:(data_ports Component.Data_out)
          in
          (Some flat, Some c, specific, c.Component.comp_name)
      )
  | Spec.From_implementation { implementation; params } -> (
      match lookup_design t implementation with
      | None -> fail "unknown implementation %s" implementation
      | Some design ->
          let flat = expand_design t design params in
          let comp =
            List.find_opt
              (fun c -> c.Component.implementation = implementation)
              Component.all
          in
          (Some flat, comp, params, implementation))
  | Spec.From_iif source ->
      let design =
        try Parser.parse source with
        | Parser.Parse_error (msg, line) ->
            fail "IIF parse error at line %d: %s" line msg
        | Lexer.Lex_error (msg, line) ->
            fail "IIF lex error at line %d: %s" line msg
      in
      if design.Ast.dparams <> [] then
        fail "IIF specification %s still has parameters %s" design.Ast.dname
          (String.concat ", " design.Ast.dparams);
      let flat = expand_design t design [] in
      (Some flat, None, [], design.Ast.dname)
  | Spec.From_vhdl_netlist _ -> (None, None, [], "cluster")

let generate_netlist t spec =
  match spec.Spec.source with
  | Spec.From_vhdl_netlist src ->
      let parsed =
        try Vhdl.parse src with Vhdl.Vhdl_error msg -> fail "VHDL: %s" msg
      in
      let resolve name =
        match Hashtbl.find_opt t.instances name with
        | Some inst -> Some inst.Instance.netlist
        | None -> None
      in
      (try Vhdl.flatten parsed ~resolve with
       | Vhdl.Vhdl_error msg -> fail "VHDL: %s" msg)
  | _ -> assert false

(* §3.3 reuse rule: an existing instance of the same structure may
   answer a request with different constraints when its recorded
   figures already satisfy them. Guarded tightly so the answer is
   indistinguishable from fresh generation for the caller: the
   instance must be clean (not degraded), have met its own request,
   and share sizing strategy and port loads (its report was computed
   under those loads); then its actual netlist is re-checked against
   the new bounds. *)
let figures_meet inst (c : Sizing.constraints) =
  try Sizing.meets_constraints inst.Instance.netlist c with
  | Faultinject.Crash s -> raise (Faultinject.Crash s)
  | _ -> false

let reusable spec inst =
  let c_new = spec.Spec.constraints in
  let c_old = inst.Instance.spec.Spec.constraints in
  (not inst.Instance.degraded)
  && inst.Instance.constraints_met
  && c_old.Sizing.strategy = c_new.Sizing.strategy
  && c_old.Sizing.port_loads = c_new.Sizing.port_loads
  && figures_meet inst c_new

let find_reusable t spec skey =
  match Hashtbl.find_opt t.by_struct skey with
  | None -> None
  | Some ids ->
      List.find_map
        (fun id ->
          match Hashtbl.find_opt t.instances id with
          | Some inst when reusable spec inst -> Some inst
          | _ -> None)
        !ids

let index_instance t ~key ~skey id =
  Lru.put t.cache key id;
  match Hashtbl.find_opt t.by_struct skey with
  | Some ids -> if not (List.mem id !ids) then ids := !ids @ [ id ]
  | None -> Hashtbl.replace t.by_struct skey (ref [ id ])

let request_inner t (spec : Spec.t) key =
  let exact =
    Trace.with_span "cache_lookup" @@ fun () ->
    match Lru.find t.cache key with
    | Some id -> (
        match Hashtbl.find_opt t.instances id with
        | Some inst -> Some inst
        | None ->
            (* mapping outlived its instance; drop it *)
            Lru.remove t.cache key;
            None)
    | None -> None
  in
  match exact with
  | Some inst ->
      t.hits <- t.hits + 1;
      Metrics.incr m_cache_hit;
      Trace.add_attr "outcome" "hit";
      inst
  | None -> (
      let skey = Spec.structural_key spec in
      match find_reusable t spec skey with
      | Some inst ->
          t.reuse_hits <- t.reuse_hits + 1;
          Metrics.incr m_cache_reuse;
          Trace.add_attr "outcome" "reuse";
          index_instance t ~key ~skey inst.Instance.id;
          inst
      | None ->
      t.misses <- t.misses + 1;
      Metrics.incr m_cache_miss;
      Trace.add_attr "outcome" "generate";
      fault_boundary @@ fun () ->
      let flat, comp, attributes, base =
        Trace.with_span "resolve" (fun () -> resolve_source t spec)
      in
      let netlist, synth_degraded =
        match flat with
        | Some flat -> synthesize_memo t spec flat
        | None ->
            (Trace.with_span "cluster" (fun () -> generate_netlist t spec),
             false)
      in
      let sized, size_degraded =
        Trace.with_span "sizing" @@ fun () ->
        size_with_degradation netlist spec.Spec.constraints
      in
      let degraded = synth_degraded || size_degraded in
      if degraded then Metrics.incr m_degraded;
      let report =
        Trace.with_span "sta" @@ fun () ->
        Sta.analyze ~port_loads:spec.Spec.constraints.Sizing.port_loads sized
      in
      let shape = Trace.with_span "shape" (fun () -> Shape.of_netlist sized) in
      let functions, connections =
        match comp with
        | Some c ->
            (c.Component.functions_of attributes,
             c.Component.connections_of attributes)
        | None -> (
            match flat, spec.Spec.source with
            | Some _, Spec.From_iif src ->
                (functions_of_design (Parser.parse src), [])
            | _ -> ([], []))
      in
      let id =
        match spec.Spec.name_hint with
        | Some n ->
            if Hashtbl.mem t.instances n then
              fail "instance name %s already in use" n
            else n
        | None -> next_id t base
      in
      let constraints_met =
        Sizing.meets_constraints sized spec.Spec.constraints
      in
      let inst =
        { Instance.id;
          spec;
          flat;
          netlist = sized;
          report;
          shape;
          functions;
          connections;
          component = Option.map (fun c -> c.Component.comp_name) comp;
          equivalent_ports =
            (match comp with
             | Some c -> c.Component.equivalent_ports
             | None -> []);
          inverted_ports =
            (match comp with
             | Some c -> c.Component.inverted_ports
             | None -> []);
          constraints_met;
          degraded;
          power = lazy (Power.estimate sized) }
      in
      (* persist first — the exact netlist file, then the database row;
         the recovery invariant is "a row implies its file" — then
         publish to the in-memory maps, so a crash mid-persist leaves
         both the disk and the memory views consistent *)
      (Trace.with_span "persist" @@ fun () ->
       let file =
         write_file t (id ^ ".vhdl")
           (Vhdl.dump { sized with Netlist.name = id })
       in
       Db.insert t.db "instances"
         [ Value.Str id;
           Value.Str (match inst.Instance.component with Some c -> c | None -> "-");
           Value.Int (Instance.gate_count inst);
           Value.Float (Instance.best_area inst);
           Value.Float report.Sta.clock_width;
           Value.Bool constraints_met;
           Value.Str file;
           Value.Bool degraded;
           Value.Str key ]);
      (* a layout-target request (§6.1) goes all the way to CIF now,
         at the best-area shape alternative *)
      (match spec.Spec.target with
       | Spec.Logic -> ()
       | Spec.Layout ->
           Trace.with_span "cif" @@ fun () ->
           let alt = Shape.best_area shape in
           let port_specs =
             Ports.default ~inputs:sized.Netlist.inputs
               ~outputs:sized.Netlist.outputs
           in
           let _, cif =
             Cif.generate sized ~strips:alt.Shape.alt_strips ~port_specs
           in
           ignore
             (write_file t
                (Printf.sprintf "%s_s%d.cif" id alt.Shape.alt_strips)
                cif));
      Hashtbl.replace t.instances id inst;
      index_instance t ~key ~skey id;
      (* record in the open transaction, if any *)
      Hashtbl.iter
        (fun _ book ->
          match book.tx_created with
          | Some created -> book.tx_created <- Some (id :: created)
          | None -> ())
        t.designs;
      inst)

(* Per-request trace capture: every span the request produced feeds the
   server's per-phase histograms, and the slowest requests are kept
   with their phase breakdown for `icdb stats`. *)
let record_request_trace t key mark inst =
  let spans = Trace.since mark in
  List.iter
    (fun (s : Trace.span) ->
      let h =
        match Hashtbl.find_opt t.phase_hist s.Trace.sname with
        | Some h -> h
        | None ->
            let h = Metrics.make_histogram s.Trace.sname in
            Hashtbl.replace t.phase_hist s.Trace.sname h;
            h
      in
      Metrics.observe h (Icdb_obs.Clock.ns_to_s s.Trace.sdur_ns))
    spans;
  match
    List.find_opt (fun (s : Trace.span) -> s.Trace.sname = "request") spans
  with
  | None -> ()
  | Some root ->
      let entry =
        { sr_key = key;
          sr_id = inst.Instance.id;
          sr_seconds = Icdb_obs.Clock.ns_to_s root.Trace.sdur_ns;
          sr_phases = Trace.phase_totals spans }
      in
      t.slow <-
        List.sort (fun a b -> compare b.sr_seconds a.sr_seconds)
          (entry :: t.slow)
        |> List.filteri (fun i _ -> i < slow_capacity)

let request_component t (spec : Spec.t) =
  Metrics.incr m_requests;
  let spec = Spec.canonical spec in
  let key = Spec.cache_key spec in
  if not (Trace.enabled ()) then (
    try request_inner t spec key
    with e ->
      Metrics.incr m_request_errors;
      raise e)
  else begin
    let mark = Trace.finished_count () in
    match Trace.with_span "request" (fun () -> request_inner t spec key) with
    | inst ->
        record_request_trace t key mark inst;
        inst
    | exception e ->
        Metrics.incr m_request_errors;
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Instance queries (§3.3)                                             *)
(* ------------------------------------------------------------------ *)

let find_instance t id =
  match Hashtbl.find_opt t.instances id with
  | Some i -> i
  | None -> fail "unknown component instance %s" id

(* Layout generation for a chosen shape alternative (§3.3): returns the
   CIF text and the file it was stored in. *)
let request_layout t id ?(alternative = 0) ?port_specs () =
  let inst = find_instance t id in
  let shape = inst.Instance.shape in
  let alt =
    if alternative = 0 then Shape.best_area shape
    else
      match
        List.find_opt (fun a -> a.Shape.alt_index = alternative) shape
      with
      | Some a -> a
      | None -> fail "instance %s has no shape alternative %d" id alternative
  in
  let specs =
    match port_specs with
    | Some s -> s
    | None ->
        Ports.default ~inputs:inst.Instance.netlist.Netlist.inputs
          ~outputs:inst.Instance.netlist.Netlist.outputs
  in
  let layout, cif =
    Cif.generate inst.Instance.netlist ~strips:alt.Shape.alt_strips
      ~port_specs:specs
  in
  let file =
    fault_boundary @@ fun () ->
    write_file t (Printf.sprintf "%s_s%d.cif" id alt.Shape.alt_strips) cif
  in
  (layout, cif, file)

(* ------------------------------------------------------------------ *)
(* Component list management (Appendix B §7)                           *)
(* ------------------------------------------------------------------ *)

let start_design t name =
  if Hashtbl.mem t.designs name then fail "design %s already started" name;
  Hashtbl.replace t.designs name { kept = []; tx_created = None }

let get_design t name =
  match Hashtbl.find_opt t.designs name with
  | Some d -> d
  | None -> fail "design %s not started" name

let start_transaction t name =
  let d = get_design t name in
  if d.tx_created <> None then fail "design %s already has an open transaction" name;
  d.tx_created <- Some [];
  Db.mark_tx_begin t.db name

let put_in_component_list t name inst_id =
  let d = get_design t name in
  ignore (find_instance t inst_id);
  if not (List.mem inst_id d.kept) then d.kept <- inst_id :: d.kept

(* Is [fname] a CIF layout file of instance [id] (<id>_s<k>.cif)? *)
let is_cif_of id fname =
  let prefix = id ^ "_s" and suffix = ".cif" in
  String.length fname > String.length prefix + String.length suffix
  && String.sub fname 0 (String.length prefix) = prefix
  && Filename.check_suffix fname suffix
  && String.for_all
       (fun c -> c >= '0' && c <= '9')
       (String.sub fname (String.length prefix)
          (String.length fname - String.length prefix - String.length suffix))

(* Best-effort workspace cleanup: the instance's netlist file and any
   CIF layouts. A file already gone is fine (ENOENT is not an error —
   a previous crash may have taken it). *)
let remove_instance_files t id =
  let rm name =
    try Sys.remove (Filename.concat t.workspace name) with Sys_error _ -> ()
  in
  rm (id ^ ".vhdl");
  match Sys.readdir t.workspace with
  | entries -> Array.iter (fun f -> if is_cif_of id f then rm f) entries
  | exception Sys_error _ -> ()

let delete_instance t id =
  (match Hashtbl.find_opt t.instances id with
   | Some _ ->
       Hashtbl.remove t.instances id;
       (* scan by value: a recovered instance's live cache key is the
          journaled spec_key, not the cache_key of its placeholder
          spec; reuse may also have aliased extra keys onto this id *)
       let stale =
         Lru.fold (fun k v acc -> if v = id then k :: acc else acc) t.cache []
       in
       List.iter (Lru.remove t.cache) stale;
       let empty =
         Hashtbl.fold
           (fun skey ids acc ->
             ids := List.filter (fun i -> i <> id) !ids;
             if !ids = [] then skey :: acc else acc)
           t.by_struct []
       in
       List.iter (Hashtbl.remove t.by_struct) empty
   | None -> ());
  let tbl = Db.table t.db "instances" in
  ignore
    (Db.delete_where t.db "instances" (fun row ->
         Table.get row tbl "id" = Value.Str id));
  remove_instance_files t id

let end_transaction t name =
  let d = get_design t name in
  match d.tx_created with
  | None -> fail "design %s has no open transaction" name
  | Some created ->
      (* instances generated during the transaction and not put in the
         component list are deleted (App B §7) *)
      List.iter
        (fun id -> if not (List.mem id d.kept) then delete_instance t id)
        created;
      d.tx_created <- None;
      Db.mark_tx_commit t.db name

let end_design t name =
  let d = get_design t name in
  List.iter (fun id -> delete_instance t id) d.kept;
  Hashtbl.remove t.designs name

let component_list t name = List.rev (get_design t name).kept

let instance_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.instances []
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

(* Reconstruct one instance from its database row and its exact-netlist
   workspace file, re-verifying the stored figures: a mismatch between
   the file and the row means one of them is damaged, and the instance
   is dropped rather than served wrong. *)
let rebuild_instance t row tbl =
  let str c = Value.to_string (Table.get row tbl c) in
  let id = str "id" in
  let gates =
    match Table.get row tbl "gates" with Value.Int n -> n | _ -> 0
  in
  let area =
    match Table.get row tbl "area" with Value.Float f -> f | _ -> 0.
  in
  let cw =
    match Table.get row tbl "clock_width" with Value.Float f -> f | _ -> 0.
  in
  let bool_col c =
    match Table.get row tbl c with Value.Bool b -> b | _ -> false
  in
  let file =
    Filename.concat t.workspace (Filename.basename (str "file"))
  in
  let contents =
    try read_file file with Sys_error msg ->
      Fault.fault Fault.Corrupt "instance %s: cannot read %s: %s" id file msg
  in
  let nl =
    try Vhdl.undump contents with Vhdl.Vhdl_error msg ->
      Fault.fault Fault.Corrupt "instance %s: bad netlist file: %s" id msg
  in
  if Netlist.instance_count nl <> gates then
    Fault.fault Fault.Corrupt
      "instance %s: file has %d gates, database says %d" id
      (Netlist.instance_count nl) gates;
  let shape = Shape.of_netlist nl in
  let best = (Shape.best_area shape).Shape.alt_area in
  if abs_float (best -. area) > 1e-6 *. (abs_float area +. 1.) then
    Fault.fault Fault.Corrupt
      "instance %s: file area %.3f does not match database area %.3f" id best
      area;
  (* delays are re-derived from the recovered netlist; CW keeps the
     stored figure (the request's port loads are not persisted) *)
  let report = { (Sta.analyze nl) with Sta.clock_width = cw } in
  let component = match str "component" with "-" -> None | c -> Some c in
  let comp = Option.bind component Component.find in
  let functions, connections =
    match comp with
    | Some c -> (c.Component.functions_of [], c.Component.connections_of [])
    | None -> ([], [])
  in
  { Instance.id;
    spec = Spec.make ~name_hint:id (Spec.From_vhdl_netlist contents);
    flat = None;
    netlist = nl;
    report;
    shape;
    functions;
    connections;
    component;
    equivalent_ports =
      (match comp with Some c -> c.Component.equivalent_ports | None -> []);
    inverted_ports =
      (match comp with Some c -> c.Component.inverted_ports | None -> []);
    constraints_met = bool_col "constraints_met";
    degraded = bool_col "degraded";
    power = lazy (Power.estimate nl) }

(* Restore the id counter so fresh requests never collide with
   recovered instance names. *)
let restore_seq t =
  Hashtbl.iter
    (fun id _ ->
      match String.rindex_opt id '_' with
      | None -> ()
      | Some i -> (
          match
            int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1))
          with
          | Some n when n > t.seq -> t.seq <- n
          | _ -> ()))
    t.instances

(* Sweep files a crash may have stranded: half-written ".tmp" files and
   netlist/layout/IIF files whose database row is gone. *)
let sweep_orphans t =
  let live_vhdl name = Hashtbl.mem t.instances name in
  let removed = ref [] in
  (match Sys.readdir t.workspace with
   | entries ->
       Array.iter
         (fun f ->
           let drop () =
             (try Sys.remove (Filename.concat t.workspace f)
              with Sys_error _ -> ());
             removed := f :: !removed
           in
           if f = "icdb.journal" || f = "icdb.snapshot" then ()
           else if Filename.check_suffix f ".tmp" then drop ()
           else if Filename.check_suffix f ".vhdl" then (
             if not (live_vhdl (Filename.chop_suffix f ".vhdl")) then drop ())
           else if Filename.check_suffix f ".iif" then (
             if not (Hashtbl.mem t.registry (Filename.chop_suffix f ".iif"))
             then drop ())
           else if Filename.check_suffix f ".cif" then
             if
               not
                 (Hashtbl.fold
                    (fun id _ acc -> acc || is_cif_of id f)
                    t.instances false)
             then drop ())
         entries
   | exception Sys_error _ -> ());
  List.sort String.compare !removed

let reopen ?(verify = true)
    ?(cache_capacity = default_cache_capacity) ~workspace () =
  if not (Sys.file_exists workspace && Sys.is_directory workspace) then
    fail "no workspace directory %s" workspace;
  let jpath = ws_journal workspace in
  let spath = ws_snapshot workspace in
  if not (Sys.file_exists jpath || Sys.file_exists spath) then
    fail "workspace %s has no journal or snapshot (not created durable?)"
      workspace;
  let have_snapshot = Sys.file_exists spath in
  let db =
    if have_snapshot then Db.load spath
    else (
      let db = Db.create () in
      setup_tables db;
      db)
  in
  let t =
    { db; workspace;
      registry = Hashtbl.create 32;
      generators = Hashtbl.create 4;
      instances = Hashtbl.create 64;
      (* the reuse cache is rebuilt from the instances table below —
         never carried over from the crashed process's memory *)
      cache = Lru.create cache_capacity;
      by_struct = Hashtbl.create 64;
      synth_memo = Lru.create cache_capacity;
      designs = Hashtbl.create 8;
      seq = 0;
      hits = 0; reuse_hits = 0; misses = 0;
      memo_hits = 0; memo_misses = 0;
      phase_hist = Hashtbl.create 16;
      slow = [];
      verify;
      durable = true }
  in
  register_builtin_generators t;
  (* static knowledge is rebuilt, not replayed; a snapshot already
     carries its rows (and bootstrap would duplicate them) *)
  if not have_snapshot then bootstrap_static t;
  let rp = Db.replay_journal db ~journal_path:jpath in
  Db.attach_journal db (Journal.open_append jpath);
  (* IIF registry from the implementations table: builtin sources are
     known in-process; acquired ones are re-read from the workspace *)
  (* Every artifact recovery refuses to serve keeps its fault class —
     [Resource] when the bytes are gone, [Corrupt] when they are there
     but wrong — and is logged as a structured warn event, instead of
     being flattened to a bare exception string. *)
  let dropped = ref [] in
  let dropped_impls = ref [] in
  let drop kind msg =
    dropped := (kind, msg) :: !dropped;
    Event.emit Event.Warn
      ~fields:[ ("fault", Fault.kind_to_string kind); ("detail", msg) ]
      "recovery dropped a damaged artifact"
  in
  let impl_tbl = Db.table db "implementations" in
  List.iter
    (fun row ->
      let name = Value.to_string (Table.get row impl_tbl "name") in
      if not (Hashtbl.mem t.registry name) then
        let source =
          match List.assoc_opt name Builtin.sources with
          | Some s -> Some s
          | None -> (
              let file =
                Filename.concat workspace
                  (Filename.basename
                     (Value.to_string (Table.get row impl_tbl "file")))
              in
              try Some (read_file file) with Sys_error _ -> None)
        in
        match source with
        | None ->
            dropped_impls := name :: !dropped_impls;
            drop Fault.Resource
              (Printf.sprintf
                 "implementation %s: source file missing or unreadable" name)
        | Some src -> (
            try Hashtbl.replace t.registry name (Parser.parse src)
            with _ ->
              dropped_impls := name :: !dropped_impls;
              drop Fault.Corrupt
                (Printf.sprintf "implementation %s: source no longer parses"
                   name)))
    (Table.rows impl_tbl);
  ignore
    (Db.delete_where t.db "implementations" (fun row ->
         List.mem
           (Value.to_string (Table.get row impl_tbl "name"))
           !dropped_impls));
  (* instances from their rows + exact netlist files *)
  let inst_tbl = Db.table db "instances" in
  List.iter
    (fun row ->
      let id = Value.to_string (Table.get row inst_tbl "id") in
      match rebuild_instance t row inst_tbl with
      | inst ->
          Hashtbl.replace t.instances id inst;
          (* exact-specification reuse survives reopen via the
             journaled spec_key; the §3.3 by_struct index does not —
             its reuse predicate needs the creating request's full
             constraints, which are not persisted *)
          let key = Value.to_string (Table.get row inst_tbl "spec_key") in
          if key <> "" then Lru.put t.cache key id
      | exception Faultinject.Crash s -> raise (Faultinject.Crash s)
      | exception Fault.Fault (kind, msg) -> drop kind msg
      | exception e ->
          drop Fault.Corrupt
            (Printf.sprintf "instance %s: %s" id (Printexc.to_string e)))
    (Table.rows inst_tbl);
  (* drop rows whose instance could not be reconstructed *)
  ignore
    (Db.delete_where t.db "instances" (fun row ->
         let id = Value.to_string (Table.get row inst_tbl "id") in
         not (Hashtbl.mem t.instances id)));
  restore_seq t;
  let orphans = sweep_orphans t in
  let report =
    { rr_entries_replayed = rp.Db.rp_applied;
      rr_torn_tail = rp.Db.rp_torn;
      rr_rolled_back_tx = rp.Db.rp_discarded <> [];
      rr_instances = instance_ids t;
      rr_dropped =
        List.sort (fun (_, a) (_, b) -> String.compare a b) !dropped;
      rr_orphans = orphans }
  in
  Event.info
    ~fields:
      [ ("workspace", workspace);
        ("replayed", string_of_int report.rr_entries_replayed);
        ("instances", string_of_int (List.length report.rr_instances));
        ("dropped", string_of_int (List.length report.rr_dropped));
        ("orphans", string_of_int (List.length report.rr_orphans)) ]
    "workspace recovered";
  (t, report)

let checkpoint t =
  if not t.durable then fail "server was not created durable";
  Db.checkpoint t.db ~snapshot:(ws_snapshot t.workspace)

let durable t = t.durable

(* ------------------------------------------------------------------ *)
(* Replication (follower-side apply)                                   *)
(* ------------------------------------------------------------------ *)

(* Workspace files a journal record depends on, as basenames. A row
   alone is not enough to rebuild an instance or an implementation —
   reopen needs the exact netlist / IIF source file — so the publisher
   ships these contents alongside the record. *)
let replication_files entry =
  let file_col values i =
    match List.nth_opt values i with
    | Some (Value.Str file) when file <> "" -> [ Filename.basename file ]
    | _ -> []
  in
  match entry with
  | Journal.Insert ("instances", values) -> file_col values 6
  | Journal.Insert ("implementations", values) -> file_col values 2
  | _ -> []

let bump_seq_for t id =
  match String.rindex_opt id '_' with
  | None -> ()
  | Some i -> (
      match
        int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1))
      with
      | Some n when n > t.seq -> t.seq <- n
      | _ -> ())

let apply_replicated t entry =
  Faultinject.hit Faultinject.Repl_replay;
  if not t.durable then fail "apply_replicated: server is not durable";
  let j =
    match Db.journal t.db with
    | Some j -> j
    | None -> fail "apply_replicated: no journal attached"
  in
  (* Apply with the journal detached, then append the shipped record
     verbatim: exactly one local record per shipped record, whatever
     side effects the apply has, keeps the follower's journal in
     sequence lockstep with the primary's stream — the follower's
     cursor IS its journal's next_seq, crash-consistent with the
     applied state for free (a reopen replays exactly the records that
     made it to disk and resumes from there). *)
  Db.detach_journal t.db;
  Fun.protect
    ~finally:(fun () -> Db.attach_journal t.db j)
    (fun () ->
      match entry with
      | Journal.Insert ("instances", values) -> (
          Db.apply_entry t.db entry;
          let tbl = Db.table t.db "instances" in
          let row = Array.of_list values in
          let id = Value.to_string (Table.get row tbl "id") in
          match rebuild_instance t row tbl with
          | inst ->
              Hashtbl.replace t.instances id inst;
              let key = Value.to_string (Table.get row tbl "spec_key") in
              if key <> "" then Lru.put t.cache key id;
              bump_seq_for t id
          | exception Faultinject.Crash s -> raise (Faultinject.Crash s)
          | exception e ->
              (* keep the row — the same record would also journal on
                 the primary; queries for this one instance degrade
                 until a later Delete or a full re-sync heals it *)
              Event.warn
                ~fields:[ ("instance", id) ]
                "replica: cannot rebuild instance from shipped row: %s"
                (Printexc.to_string e))
      | Journal.Delete ("instances", values) ->
          (* with the journal detached this deletes the row, the
             in-memory maps and the workspace files without logging;
             the verbatim append below is the one local record *)
          (match values with
           | Value.Str id :: _ -> delete_instance t id
           | _ -> Db.apply_entry t.db entry)
      | Journal.Insert ("implementations", values) -> (
          Db.apply_entry t.db entry;
          match values with
          | Value.Str name :: _ -> (
              let source =
                match List.assoc_opt name Builtin.sources with
                | Some s -> Some s
                | None -> (
                    let file = Filename.concat t.workspace (name ^ ".iif") in
                    try Some (read_file file) with Sys_error _ -> None)
              in
              match source with
              | Some src -> (
                  try Hashtbl.replace t.registry name (Parser.parse src)
                  with _ ->
                    Event.warn
                      ~fields:[ ("implementation", name) ]
                      "replica: shipped implementation does not parse")
              | None ->
                  Event.warn
                    ~fields:[ ("implementation", name) ]
                    "replica: shipped implementation source missing")
          | _ -> ())
      | Journal.Delete ("implementations", values) ->
          Db.apply_entry t.db entry;
          (match values with
           | Value.Str name :: _ -> Hashtbl.remove t.registry name
           | _ -> ())
      | entry -> Db.apply_entry t.db entry);
  Journal.append j entry
