(* A component instance: the design ICDB generated for one
   request_component (Appendix B §2). Carries everything the instance
   queries of §3.3 serve: the netlist, the delay report, the shape
   function, functions, connection information. *)

open Icdb_netlist
open Icdb_timing
open Icdb_layout

type t = {
  id : string;                       (* e.g. "counter_1" *)
  spec : Spec.t;
  flat : Icdb_iif.Flat.t option;     (* None for VHDL-cluster instances *)
  netlist : Netlist.t;               (* optimized, mapped, sized *)
  report : Sta.report;
  shape : Shape.t;
  functions : Icdb_genus.Func.t list;
  connections : Icdb_genus.Connect.t list;
  component : string option;         (* catalog component, if any *)
  equivalent_ports : string list list;   (* interchangeable port groups *)
  inverted_ports : (string * string) list;(* port -> active-low twin *)
  constraints_met : bool;
  degraded : bool;                   (* generated via a fallback path *)
  power : Power.report Lazy.t;       (* simulated on first query *)
}

(* §3.3 strings served to tools *)

let delay_string t = Sta.report_to_string t.report

let shape_string t = Shape.to_string t.shape

let area_listing t =
  String.concat "\n"
    (List.map
       (fun (a : Shape.alternative) ->
         Printf.sprintf "strip = %d width = %.0f height = %.0f area = %.0f"
           a.Shape.alt_strips a.Shape.alt_width a.Shape.alt_height
           a.Shape.alt_area)
       t.shape)

let connect_string t = Icdb_genus.Connect.all_to_string t.connections

let functions_string t =
  String.concat " " (List.map Icdb_genus.Func.to_string t.functions)

let vhdl_netlist t = Vhdl.architecture_of { t.netlist with Netlist.name = t.id }

let vhdl_head t = Vhdl.entity_of { t.netlist with Netlist.name = t.id }

let best_area t = (Shape.best_area t.shape).Shape.alt_area

(* Single scalar delay figure: worst clock-to-output delay, falling
   back to the minimum clock width for designs with no timed outputs.
   Exploration sweeps and the CQL [delay_value] output both use this,
   so local and remote drivers report identical figures. *)
let worst_delay t =
  match t.report.Sta.output_delays with
  | [] -> t.report.Sta.clock_width
  | ds -> List.fold_left (fun acc (_, d) -> Float.max acc d) neg_infinity ds

let gate_count t = Netlist.instance_count t.netlist

let power_string t = Power.report_to_string (Lazy.force t.power)

(* "I0 = I1" lines: ports the optimizer may swap freely (§3.3). *)
let equivalent_ports_string t =
  match t.equivalent_ports with
  | [] -> "(none)"
  | groups ->
      String.concat "\n" (List.map (String.concat " = ") groups)

(* "OEQ / ONEQ" lines: an output and its active-low twin, letting the
   optimizer absorb inverters (§3.3). *)
let inverted_ports_string t =
  match t.inverted_ports with
  | [] -> "(none)"
  | pairs ->
      String.concat "\n"
        (List.map (fun (a, b) -> Printf.sprintf "%s / %s" a b) pairs)
