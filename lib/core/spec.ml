(* Component specifications: what a synthesis tool hands to
   request_component (§3.2.2). Three source kinds, as in the paper:
   a catalog component (or implementation) with attribute values, an
   IIF description (control logic), or a VHDL netlist clustering
   previously generated instances.

   Specifications are kept in *canonical form* so that equal requests
   compare and hash equal regardless of how the caller spelled them:
   attributes and constraint lists are sorted, duplicates dropped
   (first occurrence wins, matching List.assoc), missing catalog
   attributes are filled with their defaults, and the default
   generator name is normalized away. [make] canonicalizes, so any
   spec built through the public constructor is already canonical. *)

open Icdb_timing

type source =
  | From_component of {
      component : string;                (* catalog name, e.g. "counter" *)
      attributes : (string * int) list;
      functions : Icdb_genus.Func.t list; (* required functions, may be [] *)
    }
  | From_implementation of {
      implementation : string;           (* IIF design name *)
      params : (string * int) list;
    }
  | From_iif of string                   (* raw IIF source text *)
  | From_vhdl_netlist of string          (* structural VHDL cluster *)

type target = Logic | Layout

type t = {
  source : source;
  constraints : Sizing.constraints;
  target : target;
  name_hint : string option;  (* user-chosen instance name *)
  generator : string option;  (* component generator to use (§4.2) *)
}

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

(* The five universal attributes (App B §3) apply to every catalog
   component; their defaults are part of every canonical attribute
   list so that "unspecified" and "explicitly default" hash equal. *)
let universal_defaults =
  [ ("input_latch", 0); ("input_type", 1); ("output_latch", 0);
    ("output_tri_state", 0); ("output_type", 1) ]

(* Keep the first occurrence of each key: List.assoc semantics. *)
let dedup_first kvs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else (
        Hashtbl.add seen k ();
        true))
    kvs

let sort_kv kvs =
  List.sort (fun (a, _) (b, _) -> compare a b) (dedup_first kvs)

(* Default-fill against the catalog: a request for a counter with
   [("size", 5)] and one spelling out every default must reuse the
   same instance (the §2.2 cache-key hazard). Unknown components are
   left alone — the request will fail with a clear error later. *)
let canonical_attributes component attributes =
  let given = dedup_first attributes in
  let defaults =
    (match Icdb_genus.Component.find component with
     | Some c -> c.Icdb_genus.Component.attributes
     | None -> [])
    @ universal_defaults
  in
  let filled =
    List.fold_left
      (fun acc (k, d) ->
        if List.mem_assoc k acc then acc else (k, d) :: acc)
      given defaults
  in
  List.sort (fun (a, _) (b, _) -> compare a b) filled

let canonical t =
  let source =
    match t.source with
    | From_component { component; attributes; functions } ->
        From_component
          { component;
            attributes = canonical_attributes component attributes;
            functions =
              List.sort_uniq
                (fun a b ->
                  compare (Icdb_genus.Func.to_string a)
                    (Icdb_genus.Func.to_string b))
                functions }
    | From_implementation { implementation; params } ->
        From_implementation { implementation; params = sort_kv params }
    | (From_iif _ | From_vhdl_netlist _) as s -> s
  in
  let c = t.constraints in
  let constraints =
    { c with
      Sizing.comb_delays = sort_kv c.Sizing.comb_delays;
      Sizing.port_loads = sort_kv c.Sizing.port_loads }
  in
  let generator =
    (* milo is the default generator (§4.2): requesting it by name and
       not requesting one at all are the same request *)
    match t.generator with Some "milo" -> None | g -> g
  in
  { t with source; constraints; generator }

let make ?(constraints = Sizing.default_constraints) ?(target = Logic)
    ?name_hint ?generator source =
  canonical { source; constraints; target; name_hint; generator }

(* ------------------------------------------------------------------ *)
(* Cache keys (§2.2, §3.3)                                             *)
(* ------------------------------------------------------------------ *)

(* Structural part: what is generated (source, generator, target) —
   two requests sharing it differ only in constraints, which is
   exactly when the §3.3 reuse rule may serve one's instance for the
   other. Raw IIF / VHDL sources are digested so the key stays short
   and stable across processes. *)
let structural_key t =
  let t = canonical t in
  let b = Buffer.create 128 in
  (match t.source with
   | From_component { component; attributes; functions } ->
       Buffer.add_string b ("C:" ^ component);
       List.iter
         (fun (k, v) -> Buffer.add_string b (Printf.sprintf ";%s=%d" k v))
         attributes;
       List.iter
         (fun f -> Buffer.add_string b (";f" ^ Icdb_genus.Func.to_string f))
         functions
   | From_implementation { implementation; params } ->
       Buffer.add_string b ("I:" ^ implementation);
       List.iter
         (fun (k, v) -> Buffer.add_string b (Printf.sprintf ";%s=%d" k v))
         params
   | From_iif src ->
       Buffer.add_string b ("F:" ^ Digest.to_hex (Digest.string src))
   | From_vhdl_netlist src ->
       Buffer.add_string b ("V:" ^ Digest.to_hex (Digest.string src)));
  (match t.generator with
   | Some g -> Buffer.add_string b (";gen=" ^ g)
   | None -> ());
  (match t.target with
   | Logic -> ()
   | Layout -> Buffer.add_string b ";layout");
  Buffer.contents b

let constraint_key t =
  let t = canonical t in
  let c = t.constraints in
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "cw=%s"
       (match c.Sizing.clock_width with
        | Some f -> string_of_float f
        | None -> "-"));
  List.iter
    (fun (p, d) -> Buffer.add_string b (Printf.sprintf ";cd%s=%g" p d))
    c.Sizing.comb_delays;
  (match c.Sizing.setup_bound with
   | Some f -> Buffer.add_string b (Printf.sprintf ";su=%g" f)
   | None -> ());
  List.iter
    (fun (p, l) -> Buffer.add_string b (Printf.sprintf ";ol%s=%g" p l))
    c.Sizing.port_loads;
  Buffer.add_string b
    (match c.Sizing.strategy with
     | Sizing.Fastest -> ";fast"
     | Sizing.Cheapest -> ";cheap"
     | Sizing.Balanced -> "");
  Buffer.contents b

(* The constraint part never contains '|', so the last '|' splits a
   stored key back into its two halves (Server.reopen relies on it). *)
let cache_key t = structural_key t ^ "|" ^ constraint_key t

let hash t = Digest.to_hex (Digest.string (cache_key t))
