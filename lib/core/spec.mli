(** Component specifications: what a synthesis tool hands to
    request_component (§3.2.2). *)

open Icdb_timing

(** The three specification sources of §3.2.2, plus explicit
    implementation selection. *)
type source =
  | From_component of {
      component : string;                 (** catalog name, e.g. "counter" *)
      attributes : (string * int) list;   (** missing ones take defaults *)
      functions : Icdb_genus.Func.t list; (** required functions (may be []) *)
    }
  | From_implementation of {
      implementation : string;            (** IIF design name *)
      params : (string * int) list;       (** all IIF parameters *)
    }
  | From_iif of string        (** raw IIF source (control logic) *)
  | From_vhdl_netlist of string
      (** structural VHDL clustering generated instances (§6.3) *)

type target = Logic | Layout

type t = {
  source : source;
  constraints : Sizing.constraints;
  target : target;
  name_hint : string option;  (** user-chosen instance name *)
  generator : string option;  (** component generator to use (§4.2) *)
}

val make :
  ?constraints:Sizing.constraints ->
  ?target:target ->
  ?name_hint:string ->
  ?generator:string ->
  source ->
  t
(** Builds the spec in canonical form (see {!canonical}), so two
    [make] calls describing the same request yield structurally equal
    ([=]) values. *)

val canonical : t -> t
(** Canonical form: attributes / parameters / constraint lists sorted
    with duplicate keys dropped (first occurrence wins), missing
    catalog and universal attributes filled with their defaults, and
    the default generator name ("milo") normalized to [None].
    Idempotent. Equal requests become structurally equal specs with
    equal {!cache_key}s and {!hash}es regardless of how the caller
    ordered or elided attributes. *)

val structural_key : t -> string
(** What is generated — source, generator, target — with constraints
    excluded. Two requests sharing a structural key differ only in
    constraints; the §3.3 reuse rule may then serve one's instance for
    the other when the recorded figures satisfy the new request. *)

val constraint_key : t -> string
(** The constraint half of {!cache_key}. Never contains ['|']. *)

val cache_key : t -> string
(** Canonical key: identical specifications reuse the stored instance
    instead of regenerating (§2.2). Equal to
    [structural_key t ^ "|" ^ constraint_key t]; covers source,
    constraints and generator (not the name hint). Raw IIF / VHDL
    sources are content-digested, so keys are stable across processes
    (they are persisted in the instances table and reloaded by
    [Server.reopen]). *)

val hash : t -> string
(** Stable hex content hash of {!cache_key} (MD5). *)
