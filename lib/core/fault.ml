(* Structured error taxonomy for the generation pipeline (Figure 8).

   Every failure inside the server is classified so callers can react
   sensibly instead of aborting the whole request:

   - [Transient]     momentary conditions (interrupted I/O, injected
                     flakiness) — worth a bounded retry;
   - [Corrupt]       stored data failed a checksum or re-verification —
                     never retried, the damaged artifact is dropped;
   - [Invalid_input] the request itself is wrong (bad attributes,
                     unparsable IIF) — reported straight back;
   - [Resource]      the environment refused (disk full, permissions) —
                     not retried, surfaced with context. *)

type kind = Transient | Corrupt | Invalid_input | Resource

exception Fault of kind * string

let kind_to_string = function
  | Transient -> "transient"
  | Corrupt -> "corrupt"
  | Invalid_input -> "invalid input"
  | Resource -> "resource"

let fault kind fmt =
  Printf.ksprintf (fun s -> raise (Fault (kind, s))) fmt

let is_transient = function Fault (Transient, _) -> true | _ -> false

(* Bounded retry for transient faults only: every other exception
   propagates on the first throw. [on_retry] (attempt number, message)
   lets callers log the degradation trail. *)
let with_retry ?(attempts = 3) ?(on_retry = fun _ _ -> ()) f =
  let rec go attempt =
    try f ()
    with Fault (Transient, msg) when attempt < attempts ->
      on_retry attempt msg;
      go (attempt + 1)
  in
  go 1
