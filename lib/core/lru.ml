(* Bounded LRU cache: hash table for O(1) lookup, intrusive
   doubly-linked list for O(1) recency updates and eviction. *)

type ('k, 'v) node = {
  nkey : 'k;
  mutable nvalue : 'v;
  mutable prev : ('k, 'v) node option;  (* toward the head (more recent) *)
  mutable next : ('k, 'v) node option;  (* toward the tail (less recent) *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable evicted : int;
}

let create cap =
  if cap <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { cap;
    tbl = Hashtbl.create (min cap 64);
    head = None;
    tail = None;
    evicted = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let evictions t = t.evicted

let detach t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let attach_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      detach t n;
      attach_front t n;
      Some n.nvalue

let mem t k = Hashtbl.mem t.tbl k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      detach t n;
      Hashtbl.remove t.tbl n.nkey;
      t.evicted <- t.evicted + 1

let put t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.nvalue <- v;
      detach t n;
      attach_front t n
  | None ->
      let n = { nkey = k; nvalue = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      attach_front t n;
      if Hashtbl.length t.tbl > t.cap then evict_lru t

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
      detach t n;
      Hashtbl.remove t.tbl k

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let fold f t acc =
  let rec go n acc =
    match n with None -> acc | Some n -> go n.next (f n.nkey n.nvalue acc)
  in
  go t.head acc
