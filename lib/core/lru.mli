(** Bounded least-recently-used cache.

    Backs the server's instance-reuse cache and the synthesis memo
    table: O(1) lookup through a hash table, recency kept in an
    intrusive doubly-linked list, evicting the least recently touched
    binding once [capacity] is exceeded. Evictions are counted so
    {!Server.stats} can report them. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** @raise Invalid_argument on a non-positive capacity. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Total bindings evicted by capacity pressure since [create]
    (explicit {!remove}s are not counted). *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit marks the binding most recently used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching recency. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, marking the binding most recently used; evicts
    the least recently used binding when over capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Drop a binding (no-op when absent; not counted as an eviction). *)

val clear : ('k, 'v) t -> unit
(** Drop every binding (the eviction counter is kept). *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** Fold most-recently-used first, without touching recency. *)
