(** Structured error taxonomy for the generation pipeline (Figure 8).

    Failures inside the server are classified so the pipeline can retry
    what is retryable, drop what is damaged, and report what is simply
    wrong — instead of aborting every request the same way. *)

type kind =
  | Transient      (** momentary — worth a bounded retry *)
  | Corrupt        (** stored data failed checksum/re-verification *)
  | Invalid_input  (** the request itself is wrong *)
  | Resource       (** the environment refused (disk, permissions) *)

exception Fault of kind * string

val kind_to_string : kind -> string

val fault : kind -> ('a, unit, string, 'b) format4 -> 'a
(** [fault kind fmt ...] raises {!Fault}. *)

val is_transient : exn -> bool

val with_retry :
  ?attempts:int -> ?on_retry:(int -> string -> unit) -> (unit -> 'a) -> 'a
(** Run [f], retrying up to [attempts] total tries as long as it raises
    [Fault (Transient, _)]. Any other exception — and the final
    transient failure — propagates. [on_retry] receives the attempt
    number just failed and the fault message. *)
