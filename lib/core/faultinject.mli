(** Deterministic fault injection for crash-recovery and degradation
    testing.

    The server calls {!hit} at each dangerous point; an armed site
    counts hits and at the configured one raises either a classified
    {!Fault.Fault} (exercising retry/degradation) or {!Crash}
    (simulating the process dying mid-operation). All state is global
    and deterministic: the same arming and workload produce the same
    failure, every run. *)

type site =
  | File_write      (** between temp-file write and atomic rename *)
  | Journal_append  (** before a journal record reaches the log *)
  | Expand          (** IIF expansion *)
  | Techmap         (** generator synthesis (optimization + mapping) *)
  | Sizing          (** transistor sizing *)
  | Journal_stream  (** journal tail-read serving a replication batch *)
  | Repl_replay     (** follower applying one shipped journal record *)
  | Loop_stall      (** top of a service event-loop tick — armed [Fail]
                        hits make the loop thread sleep instead of
                        raising, simulating a wedged loop for the stall
                        watchdog *)

type mode =
  | Fail of int * Fault.kind  (** first [n] hits raise [Fault (kind, _)] *)
  | Crash_on of int           (** the [n]th hit raises {!Crash} *)

exception Crash of site

val site_to_string : site -> string
val site_of_string : string -> site option
val all_sites : site list

val arm : site -> mode -> unit
(** Arm a site, resetting its hit counter. *)

val disarm : site -> unit
val reset : unit -> unit
(** Disarm every site. *)

val hits : site -> int
(** Hits recorded at an armed site (0 when disarmed). *)

val hit : site -> unit
(** Called by the server at each injection point. *)

val arm_from_spec : string -> unit
(** Arm sites from a ["site:mode:n[;...]"] spec — mode is [crash],
    [transient], [corrupt], [invalid] or [resource].
    @raise Invalid_argument on a malformed spec. *)

val init_from_env : unit -> unit
(** {!arm_from_spec} on [$ICDB_FAULT], when set and non-empty. *)
