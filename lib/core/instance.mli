(** A component instance: the design ICDB generated for one
    request_component (Appendix B §2), carrying everything the §3.3
    instance queries serve. *)

open Icdb_netlist
open Icdb_timing
open Icdb_layout

type t = {
  id : string;                        (** e.g. "counter_1" *)
  spec : Spec.t;
  flat : Icdb_iif.Flat.t option;      (** None for VHDL-cluster instances *)
  netlist : Netlist.t;                (** optimized, mapped, sized *)
  report : Sta.report;
  shape : Shape.t;
  functions : Icdb_genus.Func.t list;
  connections : Icdb_genus.Connect.t list;
  component : string option;          (** catalog component, if any *)
  equivalent_ports : string list list;
  inverted_ports : (string * string) list;
  constraints_met : bool;             (** the request's bounds were reached *)
  degraded : bool;                    (** generated via a fallback path: the
                                          preferred generator or the sizing
                                          pass failed and the server degraded
                                          gracefully instead of aborting *)
  power : Power.report Lazy.t;        (** simulated on first query *)
}

(** {1 The §3.3 query strings} *)

val delay_string : t -> string
(** CW / WD / SD listing. *)

val shape_string : t -> string
(** [Alternative=k width=... height=...] listing. *)

val area_listing : t -> string
(** [strip = k width = ... height = ... area = ...] listing
    (App B §5.3). *)

val connect_string : t -> string
(** [## function ... / ** port value] blocks (§4.1). *)

val functions_string : t -> string

val vhdl_netlist : t -> string
(** Structural VHDL architecture (for system simulation). *)

val vhdl_head : t -> string
(** The entity declaration only (the VHDL_head query). *)

val power_string : t -> string

val equivalent_ports_string : t -> string
(** "I0 = I1" lines: ports the optimizer may swap freely. *)

val inverted_ports_string : t -> string
(** "OEQ / ONEQ" lines: outputs with active-low twins, letting the
    optimizer absorb inverters. *)

(** {1 Summary figures} *)

val best_area : t -> float
(** Area of the best shape alternative, µm². *)

val worst_delay : t -> float
(** Worst clock-to-output delay (ns); the minimum clock width when the
    design has no timed outputs. The scalar delay figure exploration
    sweeps persist. *)

val gate_count : t -> int
