(** The ICDB component server (§2): serves components to synthesis
    tools given attributes and constraints, running the full generation
    path of Figure 8 (IIF expansion, logic optimization, technology
    mapping, verification by simulation, transistor sizing, delay and
    shape estimation) and answering queries about implementations and
    generated instances.

    Metadata lives in the relational engine (the INGRES role); bulk
    design data — IIF sources, VHDL netlists, CIF layouts — lives in
    plain files under a workspace directory (the UNIX-file-system
    role), exactly as §2.3 describes.

    A durable server additionally write-ahead-journals every dynamic
    database mutation and writes every workspace file atomically, so
    {!reopen} reconstructs the complete server state after a crash at
    any point. *)

type t

exception Icdb_error of string

val create :
  ?verify:bool ->
  ?workspace:string ->
  ?durable:bool ->
  ?cache_capacity:int ->
  unit ->
  t
(** A server preloaded with the generic component library and the
    builtin generators. [verify] (default true) simulates every
    generated netlist against its IIF specification and fails loudly
    on mismatch. [workspace] defaults to a fresh temp directory unique
    to this server. [durable] (default false) journals to
    [<workspace>/icdb.journal] for {!reopen}. [cache_capacity]
    (default 512) bounds the exact-specification reuse cache and the
    synthesis memo; eviction never deletes instances, only the fast
    path to them.
    @raise Icdb_error when [durable] and the workspace already holds a
    journal — reopen that workspace instead of re-creating over it. *)

val workspace : t -> string

val db : t -> Icdb_reldb.Db.t
(** The metadata database (the INGRES role): components,
    component_functions, implementations and instances tables, queryable
    through [Icdb_reldb.Sql]. *)

(** {1 Knowledge acquisition (§2.2, §4.2)} *)

val insert_implementation : t -> string -> string -> Icdb_iif.Ast.design
(** Register an IIF implementation source under a name; it becomes
    available to requests and as a SUBFUNCTION.
    @raise Icdb_error on parse errors. *)

val insert_generator : t -> Generator.t -> unit
(** Register an additional component generator. *)

val generator_names : t -> string list

(** {1 Catalog queries (§3.2.1)} *)

val function_query : t -> Icdb_genus.Func.t list -> string list
(** Components performing {e all} the given functions (an empty list
    returns the whole catalog). Answered through the SQL layer. *)

val implementation_query : t -> Icdb_genus.Func.t list -> string list

val component_query : t -> string -> Icdb_genus.Func.t list
(** Functions a component (or implementation) performs.
    @raise Icdb_error on unknown names. *)

(** {1 Generation (§3.2.2)} *)

val request_component : t -> Spec.t -> Instance.t
(** Generate — or reuse — a component instance. Identical (canonical)
    specifications are never regenerated (§2.2); a request differing
    only in constraints is answered by an existing clean instance of
    the same structure, sizing strategy and port loads whose measured
    figures already satisfy the new bounds (the §3.3 reuse rule),
    re-checked against the actual netlist before serving. Everything
    else runs the full generation path, with synthesis itself memoized
    by flat-design fingerprint. Constraints are best-effort, as in the
    paper: check [Instance.constraints_met].
    @raise Icdb_error on unknown components/implementations, function
    mismatches, expansion or mapping failures, or verification
    mismatches. *)

(** {1 Observability}

    Requests served while {!Icdb_obs.Trace} is enabled additionally
    feed per-phase latency histograms and a bounded list of the slowest
    requests, both reported through {!stats}. With tracing disabled
    only the plain counters are maintained (the per-request cost is a
    handful of integer increments). *)

type slow_request = {
  sr_key : string;      (** canonical cache key of the request *)
  sr_id : string;       (** instance id that answered it *)
  sr_seconds : float;   (** wall-clock duration of the request span *)
  sr_phases : (string * float) list;  (** per-phase seconds, by name *)
}

type stats = {
  st_hits : int;        (** exact-specification cache hits *)
  st_reuse_hits : int;  (** §3.3 figure-based reuse hits *)
  st_misses : int;      (** requests that ran the generation path *)
  st_evictions : int;   (** exact-cache entries evicted by capacity *)
  st_entries : int;     (** live exact-cache entries *)
  st_memo_hits : int;   (** synthesis-memo hits (pipeline skipped) *)
  st_memo_misses : int; (** synthesis-memo misses (pipeline ran) *)
  st_phases : Icdb_obs.Metrics.summary list;
      (** per-phase latency summaries (traced requests only), by name *)
  st_slow : slow_request list;  (** slowest traced requests, worst first *)
}

val stats : t -> stats
(** Counters since [create]/[reopen] (reopen starts them afresh). *)

val find_instance : t -> string -> Instance.t
(** @raise Icdb_error on unknown ids. *)

val instance_ids : t -> string list

val delete_instance : t -> string -> unit
(** Remove an instance: in-memory maps, database row, and its workspace
    netlist/layout files (best-effort — files already gone are fine).
    Unknown ids are a no-op. *)

val request_layout :
  t ->
  string ->
  ?alternative:int ->
  ?port_specs:Icdb_layout.Ports.spec list ->
  unit ->
  Icdb_layout.Cif.layout * string * string
(** [request_layout t id ~alternative ~port_specs ()] lays the instance
    out at the chosen shape alternative (0 = best area) with the given
    port positions (§3.3), returning the layout, the CIF text, and the
    workspace file it was stored in. *)

(** {1 Component list management (Appendix B §7)} *)

val start_design : t -> string -> unit
val start_transaction : t -> string -> unit
val put_in_component_list : t -> string -> string -> unit

val end_transaction : t -> string -> unit
(** Deletes every instance generated during the transaction that was
    not put in the component list. *)

val end_design : t -> string -> unit
(** Deletes the design's kept instances and forgets the design. *)

val component_list : t -> string -> string list

(** {1 Crash recovery}

    A durable server's workspace holds everything needed to rebuild it:
    the journal (and optional snapshot), the IIF sources, and one
    exact-netlist [.vhdl] file per instance. *)

type recovery_report = {
  rr_entries_replayed : int;   (** journal entries re-applied *)
  rr_torn_tail : bool;         (** a torn/corrupt journal tail was cut *)
  rr_rolled_back_tx : bool;    (** an uncommitted App B §7 tx was undone *)
  rr_instances : string list;  (** instance ids reconstructed *)
  rr_dropped : (Fault.kind * string) list;
      (** rows dropped, with their fault class: [Resource] when the
          artifact's bytes are gone, [Corrupt] when present but wrong *)
  rr_orphans : string list;    (** stray workspace files removed *)
}

val reopen :
  ?verify:bool ->
  ?cache_capacity:int ->
  workspace:string ->
  unit ->
  t * recovery_report
(** Rebuild a durable server from its workspace after a crash (or a
    clean exit): load the snapshot if present, re-run the deterministic
    bootstrap otherwise, replay the journal (rolling back an
    uncommitted transaction and truncating any torn tail), reconstruct
    every instance from its netlist file — re-verifying gate count and
    area against the stored row, dropping what fails — and sweep
    half-written temp files and orphaned artifacts. The
    exact-specification cache is rebuilt from the recovered instances
    table (never from the crashed process's memory); the §3.3
    constraint-relaxed reuse index only covers instances generated
    after the reopen, since it needs the creating request's full
    constraints, which are not persisted.
    @raise Icdb_error when the directory is missing or holds neither a
    journal nor a snapshot. *)

val checkpoint : t -> unit
(** Absorb the journal into [<workspace>/icdb.snapshot] (atomically)
    and truncate it, bounding future recovery time.
    @raise Icdb_error on a non-durable server. *)

val durable : t -> bool
(** Whether this server journals its mutations (created with
    [~durable:true] or rebuilt by {!reopen}). *)

(** {1 Replication}

    A primary ships journal records (plus the workspace files they
    depend on) to followers; a follower applies each record with
    {!apply_replicated}, which reuses the {!reopen} machinery to
    rebuild in-memory state and keeps the follower's own journal in
    sequence lockstep with the primary's stream. *)

val replication_files : Icdb_reldb.Journal.entry -> string list
(** Workspace file basenames the record depends on (an instance's exact
    netlist, an implementation's IIF source) — the publisher ships
    their contents alongside the record, since the row alone cannot
    rebuild the in-memory artifact. *)

val apply_replicated : t -> Icdb_reldb.Journal.entry -> unit
(** Apply one shipped journal record to a follower server: mutate the
    metadata database, rebuild or drop the in-memory instance or
    implementation it describes (a rebuild failure is logged and the
    row kept, mirroring what the same damage would do at reopen), then
    append the record verbatim to the local journal — exactly one local
    record per shipped record, so the follower's replication cursor is
    its journal's [next_seq] and is crash-consistent by construction.
    Fires the [repl_replay] fault-injection site.
    @raise Icdb_error on a non-durable server. *)
