(* Flat (nonparameterized) IIF: the expander's output and MILO's input.

   All indices are concrete, all programming structures unrolled, all
   subfunctions inlined. Nets are plain strings like "Q[3]". *)

type fexpr =
  | Fconst of bool
  | Fnet of string
  | Fnot of fexpr
  | Fand of fexpr list
  | For_ of fexpr list
  | Fxor of fexpr * fexpr
  | Fxnor of fexpr * fexpr
  | Fbuf of fexpr
  | Fschmitt of fexpr
  | Fdelay of fexpr * float            (* pure transport delay element *)
  | Ftri of { data : fexpr; enable : fexpr }
  | Fwor of fexpr list

(* Async set/reset action: when [cond] evaluates true the register is
   forced to [value]. Listed in priority order (first match wins). *)
type async = { value : bool; cond : fexpr }

type equation =
  | Comb of { target : string; rhs : fexpr }
  | Ff of {
      target : string;
      data : fexpr;
      rising : bool;          (* true: ~r, false: ~f *)
      clock : fexpr;
      asyncs : async list;
    }
  | Latch of {
      target : string;
      data : fexpr;
      transparent_high : bool; (* true: ~h, false: ~l *)
      gate : fexpr;
    }

type t = {
  fname : string;
  finputs : string list;
  foutputs : string list;
  finternals : string list;
  fequations : equation list;
}

let target_of = function
  | Comb { target; _ } | Ff { target; _ } | Latch { target; _ } -> target

let is_sequential = function
  | Ff _ | Latch _ -> true
  | Comb _ -> false

(* Nets appearing in an expression, left to right, with duplicates. *)
let rec fexpr_nets = function
  | Fconst _ -> []
  | Fnet n -> [ n ]
  | Fnot e | Fbuf e | Fschmitt e | Fdelay (e, _) -> fexpr_nets e
  | Fand es | For_ es | Fwor es -> List.concat_map fexpr_nets es
  | Fxor (a, b) | Fxnor (a, b) -> fexpr_nets a @ fexpr_nets b
  | Ftri { data; enable } -> fexpr_nets data @ fexpr_nets enable

let equation_nets = function
  | Comb { rhs; _ } -> fexpr_nets rhs
  | Ff { data; clock; asyncs; _ } ->
      fexpr_nets data @ fexpr_nets clock
      @ List.concat_map (fun a -> fexpr_nets a.cond) asyncs
  | Latch { data; gate; _ } -> fexpr_nets data @ fexpr_nets gate

let uniq names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin Hashtbl.add seen n (); true end)
    names

(* All nets referenced anywhere in the design. *)
let all_nets t =
  uniq
    (t.finputs @ t.foutputs @ t.finternals
    @ List.concat_map (fun eq -> target_of eq :: equation_nets eq) t.fequations)

type problem =
  | Undriven of string       (* output or used net with no equation *)
  | Multiple_driver of string
  | Unknown_net of string    (* referenced but never declared *)

let problem_to_string = function
  | Undriven n -> "undriven net " ^ n
  | Multiple_driver n -> "multiple drivers on net " ^ n
  | Unknown_net n -> "undeclared net " ^ n

(* Structural checks: every output driven, no net driven twice, every
   referenced net declared, inputs not driven. *)
let validate t =
  let driven = Hashtbl.create 32 in
  let problems = ref [] in
  let add p = problems := p :: !problems in
  List.iter
    (fun eq ->
      let tgt = target_of eq in
      if Hashtbl.mem driven tgt then add (Multiple_driver tgt)
      else Hashtbl.add driven tgt ())
    t.fequations;
  let declared = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace declared n ())
    (t.finputs @ t.foutputs @ t.finternals);
  List.iter
    (fun eq ->
      List.iter
        (fun n ->
          if not (Hashtbl.mem declared n) then add (Unknown_net n))
        (target_of eq :: equation_nets eq))
    t.fequations;
  List.iter
    (fun o -> if not (Hashtbl.mem driven o) then add (Undriven o))
    t.foutputs;
  List.iter
    (fun i -> if Hashtbl.mem driven i then add (Multiple_driver i))
    t.finputs;
  (* Internal nets that are read must be driven. *)
  let used = Hashtbl.create 32 in
  List.iter
    (fun eq -> List.iter (fun n -> Hashtbl.replace used n ()) (equation_nets eq))
    t.fequations;
  List.iter
    (fun n ->
      if Hashtbl.mem used n && not (Hashtbl.mem driven n)
         && not (List.mem n t.finputs)
      then add (Undriven n))
    t.finternals;
  uniq (List.rev !problems)

(* ------------------------------------------------------------------ *)
(* MILO-format printer (Appendix A: XOR printed as !=)                 *)
(* ------------------------------------------------------------------ *)

let rec print_fexpr buf e =
  let atom e =
    match e with
    | Fconst _ | Fnet _ | Fnot (Fnet _) -> print_fexpr buf e
    | _ ->
        Buffer.add_char buf '(';
        print_fexpr buf e;
        Buffer.add_char buf ')'
  in
  let sep_list op es =
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf op;
        atom x)
      es
  in
  match e with
  | Fconst b -> Buffer.add_string buf (if b then "1" else "0")
  | Fnet n -> Buffer.add_string buf n
  | Fnot e ->
      Buffer.add_char buf '!';
      atom e
  | Fand es -> sep_list "*" es
  | For_ es -> sep_list "+" es
  | Fxor (a, b) ->
      atom a;
      Buffer.add_string buf "!=";
      atom b
  | Fxnor (a, b) ->
      atom a;
      Buffer.add_string buf "==";
      atom b
  | Fbuf e ->
      Buffer.add_string buf "~b ";
      atom e
  | Fschmitt e ->
      Buffer.add_string buf "~s ";
      atom e
  | Fdelay (e, d) ->
      atom e;
      Buffer.add_string buf (Printf.sprintf " ~d %g" d)
  | Ftri { data; enable } ->
      atom data;
      Buffer.add_string buf " ~t ";
      atom enable
  | Fwor es -> sep_list " ~w " es

let print_equation buf = function
  | Comb { target; rhs } ->
      Buffer.add_string buf target;
      Buffer.add_char buf '=';
      print_fexpr buf rhs;
      Buffer.add_string buf ";\n"
  | Ff { target; data; rising; clock; asyncs } ->
      Buffer.add_string buf target;
      Buffer.add_string buf "=(";
      print_fexpr buf data;
      Buffer.add_string buf (if rising then ") @(~r " else ") @(~f ");
      print_fexpr buf clock;
      Buffer.add_char buf ')';
      if asyncs <> [] then begin
        Buffer.add_string buf " ~a(";
        List.iteri
          (fun i a ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (if a.value then "1/(" else "0/(");
            print_fexpr buf a.cond;
            Buffer.add_char buf ')')
          asyncs;
        Buffer.add_char buf ')'
      end;
      Buffer.add_string buf ";\n"
  | Latch { target; data; transparent_high; gate } ->
      Buffer.add_string buf target;
      Buffer.add_string buf "=(";
      print_fexpr buf data;
      Buffer.add_string buf (if transparent_high then ") @(~h " else ") @(~l ");
      print_fexpr buf gate;
      Buffer.add_string buf ");\n"

let to_milo t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "NAME=%s;\n" t.fname);
  Buffer.add_string buf
    (Printf.sprintf "INORDER= %s;\n" (String.concat " " t.finputs));
  Buffer.add_string buf
    (Printf.sprintf "OUTORDER=%s;\n" (String.concat " " t.foutputs));
  List.iter (print_equation buf) t.fequations;
  Buffer.contents buf

(* Content fingerprint for memoization: the MILO text covers name,
   port order and every equation; internals are appended since
   to_milo omits them. *)
let fingerprint t =
  Digest.to_hex
    (Digest.string
       (to_milo t ^ "INTERNAL=" ^ String.concat " " t.finternals ^ ";\n"))
