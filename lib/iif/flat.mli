(** Flat (nonparameterized) IIF: the expander's output and the logic
    synthesizer's input. All indices are concrete, programming
    structures unrolled and subfunctions inlined; nets are plain
    strings like "Q[3]". *)

type fexpr =
  | Fconst of bool
  | Fnet of string
  | Fnot of fexpr
  | Fand of fexpr list
  | For_ of fexpr list
  | Fxor of fexpr * fexpr
  | Fxnor of fexpr * fexpr
  | Fbuf of fexpr                       (** ~b *)
  | Fschmitt of fexpr                   (** ~s *)
  | Fdelay of fexpr * float             (** ~d, transport delay in ns *)
  | Ftri of { data : fexpr; enable : fexpr }  (** ~t *)
  | Fwor of fexpr list                  (** ~w *)

(** Asynchronous set/reset action: when [cond] holds the register is
    forced to [value]; listed in priority order. *)
type async = { value : bool; cond : fexpr }

type equation =
  | Comb of { target : string; rhs : fexpr }
  | Ff of {
      target : string;
      data : fexpr;
      rising : bool;   (** true: ~r, false: ~f *)
      clock : fexpr;
      asyncs : async list;
    }
  | Latch of {
      target : string;
      data : fexpr;
      transparent_high : bool;  (** true: ~h, false: ~l *)
      gate : fexpr;
    }

type t = {
  fname : string;
  finputs : string list;
  foutputs : string list;
  finternals : string list;
  fequations : equation list;
}

val target_of : equation -> string
val is_sequential : equation -> bool

val fexpr_nets : fexpr -> string list
(** Nets read by an expression, left to right, with duplicates. *)

val equation_nets : equation -> string list

val uniq : string list -> string list
(** Order-preserving deduplication. *)

val all_nets : t -> string list

type problem =
  | Undriven of string
  | Multiple_driver of string
  | Unknown_net of string

val problem_to_string : problem -> string

val validate : t -> problem list
(** Structural checks: every output driven, no net driven twice, every
    referenced net declared, no driven inputs. Empty = clean. *)

val print_fexpr : Buffer.t -> fexpr -> unit
(** MILO textual form (XOR prints as [!=], XNOR as [==]). *)

val print_equation : Buffer.t -> equation -> unit

val to_milo : t -> string
(** The nonparameterized IIF file format of Appendix A:
    NAME=/INORDER=/OUTORDER= headers followed by the equations. *)

val fingerprint : t -> string
(** Stable hex content hash of the whole design (MILO text plus the
    internal-net list). Two flats with equal fingerprints synthesize
    identically; the server keys its synthesis memo on it. *)
