(* Metrics registry: counters, gauges, and log-scale latency histograms.

   Zero-dependency and cheap: a counter bump is one mutable-field
   update, a histogram observation is one array increment. Instruments
   get-or-create by name, so call sites can be sprinkled anywhere
   without wiring a registry through every layer; the process-wide
   [default] registry is what `icdb stats` renders.

   Histograms are log-scale: buckets grow geometrically by a factor of
   10^(1/10) (~26% per bucket, ten buckets per decade) from 1 ns to
   ~10^5 s, so a single 140-slot array spans every latency the pipeline
   can produce and percentile estimates carry a bounded ~13% relative
   error. Reported percentiles are additionally clamped to the observed
   [min, max], which makes single-valued distributions exact. *)

type counter = { cname : string; mutable count : int }
type gauge = { gname : string; mutable gvalue : float }

let n_buckets = 140
let buckets_per_decade = 10.0
let floor_value = 1e-9

type histogram = {
  hname : string;
  buckets : int array;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type registry = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16 }

let default = create ()

(* One process-wide lock serializes registry *structure* — instrument
   get-or-create and whole-registry snapshots (render, reset, the
   sorted views) — so a scrape taken while worker threads are minting
   new instruments never folds over a resizing hashtable. Instrument
   *updates* (incr/observe/set) stay lock-free: they are plain mutable
   field writes on already-created instruments, which is safe under the
   threads library's interleaving and keeps the hot path at one or two
   field updates. *)
let reg_lock = Mutex.create ()

let locked f =
  Mutex.lock reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) f

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let counter ?(registry = default) name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry.counters name with
  | Some c -> c
  | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.replace registry.counters name c;
      c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let gauge ?(registry = default) name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry.gauges name with
  | Some g -> g
  | None ->
      let g = { gname = name; gvalue = 0.0 } in
      Hashtbl.replace registry.gauges name g;
      g

let set g v = g.gvalue <- v
let gauge_value g = g.gvalue

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let make_histogram name =
  { hname = name;
    buckets = Array.make n_buckets 0;
    hcount = 0;
    hsum = 0.0;
    hmin = infinity;
    hmax = neg_infinity }

let histogram ?(registry = default) name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry.histograms name with
  | Some h -> h
  | None ->
      let h = make_histogram name in
      Hashtbl.replace registry.histograms name h;
      h

let bucket_of v =
  if v <= floor_value then 0
  else
    let i =
      int_of_float (Float.floor (buckets_per_decade *. log10 (v /. floor_value)))
    in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let observe h v =
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

(* Geometric midpoint of bucket [i]: the representative value reported
   for any observation that landed there. *)
let bucket_mid i =
  floor_value *. (10.0 ** ((float_of_int i +. 0.5) /. buckets_per_decade))

(* Upper bound of bucket [i] — the [le] boundary Prometheus exposition
   reports. Strictly increasing in [i] because the ratio between
   consecutive bounds is the constant 10^(1/10) > 1. *)
let bucket_upper i =
  floor_value *. (10.0 ** (float_of_int (i + 1) /. buckets_per_decade))

let percentile h q =
  if h.hcount = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.hcount)) in
      if r < 1 then 1 else if r > h.hcount then h.hcount else r
    in
    let rec go i acc =
      if i >= n_buckets then h.hmax
      else
        let acc = acc + h.buckets.(i) in
        if acc >= rank then bucket_mid i else go (i + 1) acc
    in
    Float.min h.hmax (Float.max h.hmin (go 0 0))
  end

type summary = {
  s_name : string;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let summary h =
  { s_name = h.hname;
    s_count = h.hcount;
    s_sum = h.hsum;
    s_min = (if h.hcount = 0 then 0.0 else h.hmin);
    s_max = (if h.hcount = 0 then 0.0 else h.hmax);
    s_mean = (if h.hcount = 0 then 0.0 else h.hsum /. float_of_int h.hcount);
    s_p50 = percentile h 0.50;
    s_p90 = percentile h 0.90;
    s_p99 = percentile h 0.99 }

(* ------------------------------------------------------------------ *)
(* Registry views                                                      *)
(* ------------------------------------------------------------------ *)

let sorted_by_name key tbl =
  locked (fun () -> Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])
  |> List.sort (fun a b -> String.compare (key a) (key b))

let counters r = sorted_by_name (fun c -> c.cname) r.counters
let gauges r = sorted_by_name (fun g -> g.gname) r.gauges
let histograms r = sorted_by_name (fun h -> h.hname) r.histograms

(* Zero every instrument in place; references held by call sites stay
   valid (and keep being bumped), only the accumulated values drop. *)
let reset r =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> c.count <- 0) r.counters;
  Hashtbl.iter (fun _ g -> g.gvalue <- 0.0) r.gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.hcount <- 0;
      h.hsum <- 0.0;
      h.hmin <- infinity;
      h.hmax <- neg_infinity)
    r.histograms

let pretty_s v =
  if v >= 1.0 then Printf.sprintf "%.2f s" v
  else if v >= 1e-3 then Printf.sprintf "%.2f ms" (v *. 1e3)
  else if v >= 1e-6 then Printf.sprintf "%.2f us" (v *. 1e6)
  else Printf.sprintf "%.0f ns" (v *. 1e9)

let render ?(registry = default) () =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match counters registry with
   | [] -> ()
   | cs ->
       add "counters:\n";
       List.iter (fun c -> add "  %-32s %d\n" c.cname c.count) cs);
  (match gauges registry with
   | [] -> ()
   | gs ->
       add "gauges:\n";
       List.iter (fun g -> add "  %-32s %g\n" g.gname g.gvalue) gs);
  (match histograms registry with
   | [] -> ()
   | hs ->
       add "histograms:\n";
       add "  %-32s %7s %10s %10s %10s %10s %10s\n" "name" "count" "p50" "p90"
         "p99" "max" "total";
       List.iter
         (fun h ->
           let s = summary h in
           add "  %-32s %7d %10s %10s %10s %10s %10s\n" s.s_name s.s_count
             (pretty_s s.s_p50) (pretty_s s.s_p90) (pretty_s s.s_p99)
             (pretty_s s.s_max) (pretty_s s.s_sum))
         hs);
  Buffer.contents buf
