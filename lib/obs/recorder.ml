(* Always-on flight recorder: the daemon's black box.

   Holds a bounded ring of recent structured events (captured via an
   {!Event} sink), a reference to the telemetry sampler (last-K series
   samples), and provider callbacks for live tables (the per-connection
   table, arbitrary metadata). [to_json] assembles a post-mortem dump;
   [dump] writes it atomically. The CLI wires dumps to fatal exits,
   SIGQUIT, and the `/blackboxz` admin endpoint (`icdb blackbox`).

   Capture is cheap — one mutex, one array write per event — and the
   ring only sees events that pass the current {!Event} threshold, so
   a daemon running at the default [Info] level records info and up.
   Everything else (JSON assembly, table polling) happens only at dump
   time, which is allowed to be expensive: the process is dying or an
   operator asked. *)

type t = {
  cap : int;
  lock : Mutex.t;
  events : string array;        (* rendered logfmt lines, ring *)
  mutable total : int;          (* events ever captured *)
  mutable sink_id : int option; (* our Event sink registration *)
  mutable sampler : Series.t option;
  mutable series_last : int;    (* samples per series to include *)
  (* named table providers, registration order; each poll returns rows
     of (column, value) pairs *)
  mutable tables : (string * (unit -> (string * string) list list)) list;
  mutable meta : (string * string) list;
  started_at : float;
}

let create ?(cap = 1024) () =
  if cap <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  let t =
    { cap;
      lock = Mutex.create ();
      events = Array.make cap "";
      total = 0;
      sink_id = None;
      sampler = None;
      series_last = 120;
      tables = [];
      meta = [];
      started_at = Unix.gettimeofday () }
  in
  let sink e =
    let line = Event.render e in
    Mutex.lock t.lock;
    t.events.(t.total mod t.cap) <- line;
    t.total <- t.total + 1;
    Mutex.unlock t.lock
  in
  t.sink_id <- Some (Event.add_sink sink);
  t

let close t =
  match t.sink_id with
  | Some id ->
      Event.remove_sink id;
      t.sink_id <- None
  | None -> ()

let set_sampler ?(last = 120) t sampler =
  Mutex.lock t.lock;
  t.sampler <- Some sampler;
  t.series_last <- last;
  Mutex.unlock t.lock

let add_table t name poll =
  Mutex.lock t.lock;
  t.tables <- t.tables @ [ (name, poll) ];
  Mutex.unlock t.lock

let set_meta t kvs =
  Mutex.lock t.lock;
  t.meta <- kvs;
  Mutex.unlock t.lock

let event_count t =
  Mutex.lock t.lock;
  let n = min t.total t.cap in
  Mutex.unlock t.lock;
  n

(* Captured events oldest-first. *)
let events t =
  Mutex.lock t.lock;
  let n = min t.total t.cap in
  let lo = t.total - n in
  let out = List.init n (fun i -> t.events.((lo + i) mod t.cap)) in
  Mutex.unlock t.lock;
  out

let to_json ?(reason = "requested") t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.lock;
  let sampler = t.sampler
  and series_last = t.series_last
  and tables = t.tables
  and meta = t.meta in
  Mutex.unlock t.lock;
  let table_json (name, poll) =
    let rows = try poll () with _ -> [] in
    ( name,
      Json.List
        (List.map
           (fun row ->
             Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) row))
           rows) )
  in
  Json.Obj
    ([ ("blackbox", Json.Str "icdb");
       ("reason", Json.Str reason);
       ("dumped_at", Json.float ~prec:3 now);
       ("recorder_started_at", Json.float ~prec:3 t.started_at);
       ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) meta));
       ( "events",
         Json.Obj
           [ ("captured", Json.Int t.total);
             ("retained", Json.Int (event_count t));
             ("lines", Json.List (List.map (fun l -> Json.Str l) (events t)))
           ] );
       ( "series",
         match sampler with
         | None -> Json.Null
         | Some s -> Series.to_json ~last:series_last s ) ]
    @ List.map table_json tables)

(* Atomic dump (tmp + rename): a crash mid-dump never leaves a
   truncated file where a previous good dump stood. *)
let dump ?reason t ~path = Json.write ~path (to_json ?reason t)
