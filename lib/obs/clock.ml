(* Monotonized nanosecond clock for spans and latency metrics.

   The base source is the wall clock (Unix.gettimeofday, microsecond
   resolution on every platform we run on), guarded so that successive
   reads never go backwards — an NTP step or a leap adjustment must not
   produce a negative span duration. Nanoseconds in an OCaml [int]
   (63-bit) are good until the year 2262. *)

let last = ref 0

let now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  if t > !last then last := t;
  !last

let ns_to_s ns = float_of_int ns *. 1e-9
let ns_to_us ns = float_of_int ns *. 1e-3
