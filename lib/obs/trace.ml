(* Hierarchical tracing: nestable spans over a monotonic clock.

   A span is an interval with a name, key/value attributes, and a
   parent — the innermost span open at the time it started. Completed
   spans land in a bounded ring (oldest evicted first) and are
   exportable as Chrome trace_event JSON, loadable in chrome://tracing
   or https://ui.perfetto.dev.

   Disabled tracing is the default and costs one branch per
   [with_span] — no clock read, no allocation, no ring traffic — so
   instrumentation can stay in the hot paths permanently. Every span
   that completes also feeds the process-wide latency histogram
   [Metrics.default] under "span.<name>", which is where per-phase
   p50/p90/p99 figures come from. *)

type span = {
  sid : int;
  sparent : int option;
  sname : string;
  stag : string option;   (* owner: the request/connection this span served *)
  mutable sattrs : (string * string) list;
  sstart_ns : int;
  mutable sdur_ns : int;  (* -1 while the span is open *)
}

let on = ref false
let enabled () = !on
let set_enabled b = on := b

let next_id = ref 0
let stack : span list ref = ref []

(* The owner tag for spans started now. Scoped, not assigned: handlers
   wrap request execution in [with_tag], so the tag always comes from
   the request being served, never from stale global state. The caller
   discipline that makes one ref sound is the same one that makes the
   span stack sound — all span traffic happens under the server lock. *)
let tag_ctx : string option ref = ref None

let current_tag () = !tag_ctx

let with_tag tag f =
  let saved = !tag_ctx in
  tag_ctx := Some tag;
  Fun.protect ~finally:(fun () -> tag_ctx := saved) f

(* Completed-span ring. [total] counts every span ever finished; the
   ring retains the last [cap] of them. *)
let cap = ref 65536
let ring : span option array ref = ref [||]
let total = ref 0

let capacity () = !cap

let reset () =
  stack := [];
  ring := [||];
  total := 0

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  cap := n;
  reset ()

let record s =
  if Array.length !ring <> !cap then ring := Array.make !cap None;
  !ring.(!total mod !cap) <- Some s;
  incr total

let finished_count () = !total

(* Finished spans number [mark], in completion order, for
   [mark] taken from [finished_count]. Spans evicted from the ring are
   silently absent. *)
let since mark =
  let lo = max mark (!total - !cap) in
  let lo = max lo 0 in
  List.init (!total - lo) (fun i ->
      match !ring.((lo + i) mod !cap) with
      | Some s -> s
      | None -> assert false)

let all_finished () = since 0

(* Retained completed spans owned by [tag], oldest first. This is what
   [TraceFetch] serves: a client asking for its own request's spans
   must never see another connection's. *)
let tagged tag =
  List.filter (fun s -> s.stag = Some tag) (all_finished ())

(* ------------------------------------------------------------------ *)
(* Starting and stopping                                               *)
(* ------------------------------------------------------------------ *)

let start ?(attrs = []) name =
  incr next_id;
  let s =
    { sid = !next_id;
      sparent = (match !stack with [] -> None | p :: _ -> Some p.sid);
      sname = name;
      stag = !tag_ctx;
      sattrs = attrs;
      sstart_ns = Clock.now_ns ();
      sdur_ns = -1 }
  in
  stack := s :: !stack;
  s

let stop s =
  if s.sdur_ns < 0 then begin
    s.sdur_ns <- max 0 (Clock.now_ns () - s.sstart_ns);
    (* pop to this span; tolerate out-of-order stops from exotic
       control flow by dropping it wherever it is *)
    (match !stack with
     | x :: rest when x == s -> stack := rest
     | l -> stack := List.filter (fun x -> x != s) l);
    record s;
    Metrics.observe
      (Metrics.histogram ("span." ^ s.sname))
      (Clock.ns_to_s s.sdur_ns)
  end

let with_span ?attrs name f =
  if not !on then f ()
  else begin
    let s = start ?attrs name in
    Fun.protect ~finally:(fun () -> stop s) f
  end

(* Attach an attribute to the innermost open span; a no-op when
   disabled or outside any span, so call sites need no guards. *)
let add_attr k v =
  if !on then
    match !stack with [] -> () | s :: _ -> s.sattrs <- (k, v) :: s.sattrs

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

(* Total seconds per span name, sorted by name. Nested spans of the
   same name both count — this is "time in spans named X", not
   exclusive self-time. *)
let phase_totals spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let prev = try Hashtbl.find tbl s.sname with Not_found -> 0.0 in
      Hashtbl.replace tbl s.sname (prev +. Clock.ns_to_s s.sdur_ns))
    spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Complete ("ph":"X") events, one tid per owner tag: nesting within a
   row is recovered by the viewer from the containment of
   [ts, ts+dur] intervals, which holds per request because each
   request's spans form one contiguous single-threaded stack.
   Untagged spans share tid 1 ("main"); each distinct tag gets its own
   tid (in order of first appearance) plus a thread_name metadata event
   so chrome://tracing labels the row with the tag. Timestamps are
   microseconds relative to the earliest span in the export. *)
let export_chrome ?spans () =
  let spans = match spans with Some s -> s | None -> all_finished () in
  let t0 =
    List.fold_left (fun acc s -> min acc s.sstart_ns) max_int spans
  in
  let tids = Hashtbl.create 8 in
  let next_tid = ref 1 in
  let tid_of tag =
    let key = match tag with None -> "main" | Some t -> t in
    match Hashtbl.find_opt tids key with
    | Some n -> n
    | None ->
        let n = !next_tid in
        incr next_tid;
        Hashtbl.replace tids key n;
        n
  in
  (* assign tids in span order so the output is deterministic *)
  List.iter (fun s -> ignore (tid_of s.stag)) spans;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',' in
  Hashtbl.fold (fun name tid acc -> (tid, name) :: acc) tids []
  |> List.sort compare
  |> List.iter (fun (tid, name) ->
         sep ();
         Buffer.add_string buf
           (Printf.sprintf
              "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\
               \"tid\":%d,\"args\":{\"name\":\"%s\"}}"
              tid (json_escape name)));
  List.iter
    (fun s ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"icdb\",\"ph\":\"X\",\"ts\":%.3f,\
            \"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
           (json_escape s.sname)
           (Clock.ns_to_us (s.sstart_ns - t0))
           (Clock.ns_to_us (max 0 s.sdur_ns))
           (tid_of s.stag));
      Buffer.add_string buf (Printf.sprintf "\"span_id\":%d" s.sid);
      (match s.sparent with
       | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent_id\":%d" p)
       | None -> ());
      (match s.stag with
       | Some t ->
           Buffer.add_string buf
             (Printf.sprintf ",\"tag\":\"%s\"" (json_escape t))
       | None -> ());
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        s.sattrs;
      Buffer.add_string buf "}}")
    spans;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write_chrome ?spans path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_chrome ?spans ()));
  Sys.rename tmp path
