(* Continuous telemetry: fixed-capacity time-series rings fed by a
   background sampler.

   Every observability surface the daemon had before this module —
   /metrics, !stats, /slowz — is a point-in-time snapshot: a 30-second
   stall or a replication-lag ramp leaves no evidence once it passes.
   A sampler closes that gap. Each registered series snapshots one
   scalar per tick into a preallocated float ring sharing the sampler's
   timestamp ring, so a tick allocates nothing and costs one clock
   read plus one array write per series; history readback ([samples],
   /statz, the flight recorder) is the cold path and may allocate.

   Sources:
   - [Counter c]        sampled delta-encoded: each point is the
                        increment since the previous tick, so a point
                        divided by the period is a rate (req/s) and a
                        ring wrap loses old points, never skews new ones;
   - [Gauge g]          sampled as the level;
   - [Percentile (h,q)] the histogram's cumulative-to-date quantile at
                        each tick (the ramp of p99 over time);
   - [Poll f]           a callback polled each tick — for values that
                        live outside the metrics registry (queue depth
                        under its own lock, /proc fd counts). A poll
                        that raises records NaN for that tick rather
                        than killing the sampler.

   The sampler ticks on its own thread at a fixed period with drift
   correction: a tick landing more than a period late counts the
   skipped deadlines in [missed_deadlines] — the signal the service's
   stall watchdog consumes. [on_tick] hooks run after each sample pass
   (also exception-isolated); the service hangs its watchdog checks
   there so a wedged event loop is detected even while nothing is
   scraping. *)

type source =
  | Counter of Metrics.counter
  | Gauge of Metrics.gauge
  | Percentile of Metrics.histogram * float
  | Poll of (unit -> float)

type series = {
  sr_name : string;
  sr_source : source;
  sr_data : float array;      (* ring, indexed by the sampler's tick count *)
  mutable sr_last : int;      (* previous counter reading, for deltas *)
}

let kind_of = function
  | Counter _ -> "delta"
  | Gauge _ | Poll _ -> "level"
  | Percentile (_, q) -> Printf.sprintf "p%g" (100.0 *. q)

type t = {
  period_s : float;
  cap : int;
  times : float array;        (* wall-clock of each retained tick *)
  lock : Mutex.t;             (* guards [series] and the tick counters *)
  mutable series : series list;  (* registration order, newest first *)
  mutable total : int;        (* ticks ever taken *)
  mutable missed : int;       (* deadlines missed by a late tick *)
  mutable last_tick : float;  (* wall-clock of the last completed tick *)
  mutable on_tick : (unit -> unit) list;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
}

let create ?(cap = 600) ~period_s () =
  if cap <= 0 then invalid_arg "Series.create: capacity must be positive";
  if period_s <= 0.0 then invalid_arg "Series.create: period must be positive";
  { period_s;
    cap;
    times = Array.make cap 0.0;
    lock = Mutex.create ();
    series = [];
    total = 0;
    missed = 0;
    last_tick = 0.0;
    on_tick = [];
    stop_flag = Atomic.make false;
    thread = None }

let period t = t.period_s
let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add t name source =
  locked t @@ fun () ->
  match List.find_opt (fun s -> s.sr_name = name) t.series with
  | Some s -> s
  | None ->
      let s =
        { sr_name = name;
          sr_source = source;
          sr_data = Array.make t.cap Float.nan;
          sr_last =
            (match source with Counter c -> c.Metrics.count | _ -> 0) }
      in
      t.series <- s :: t.series;
      s

let on_tick t f = locked t (fun () -> t.on_tick <- f :: t.on_tick)

let sample_of s =
  match s.sr_source with
  | Counter c ->
      let v = c.Metrics.count in
      let d = v - s.sr_last in
      s.sr_last <- v;
      float_of_int d
  | Gauge g -> g.Metrics.gvalue
  | Percentile (h, q) -> Metrics.percentile h q
  | Poll f -> ( match f () with v -> v | exception _ -> Float.nan)

(* One sample pass: every series records one point against one shared
   timestamp. Public so tests (and embedders without the thread) can
   drive the clock by hand. *)
let tick t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.lock;
  let slot = t.total mod t.cap in
  t.times.(slot) <- now;
  List.iter (fun s -> s.sr_data.(slot) <- sample_of s) t.series;
  t.total <- t.total + 1;
  t.last_tick <- now;
  let hooks = t.on_tick in
  Mutex.unlock t.lock;
  List.iter (fun f -> try f () with _ -> ()) hooks

let sample_count t = locked t (fun () -> min t.total t.cap)
let total_ticks t = locked t (fun () -> t.total)
let missed_deadlines t = locked t (fun () -> t.missed)
let last_tick t = locked t (fun () -> t.last_tick)

let list t = locked t (fun () -> List.rev t.series)

(* Retained points of one series, oldest first, paired with their tick
   timestamps. Cold path; allocates. *)
let samples t s =
  locked t @@ fun () ->
  let n = min t.total t.cap in
  let lo = t.total - n in
  List.init n (fun i ->
      let slot = (lo + i) mod t.cap in
      (t.times.(slot), s.sr_data.(slot)))

(* The most recent point, when any tick has run. *)
let last_value t s =
  locked t @@ fun () ->
  if t.total = 0 then None
  else
    let slot = (t.total - 1) mod t.cap in
    Some (t.times.(slot), s.sr_data.(slot))

let running t = t.thread <> None

let loop t =
  let start = Unix.gettimeofday () in
  let k = ref 0 in
  while not (Atomic.get t.stop_flag) do
    tick t;
    incr k;
    let next = start +. (float_of_int !k *. t.period_s) in
    let now = Unix.gettimeofday () in
    if now > next +. t.period_s then begin
      (* we are at least one whole period late: count every deadline
         blown past and jump the schedule forward rather than burst *)
      let skipped = int_of_float ((now -. next) /. t.period_s) in
      Mutex.lock t.lock;
      t.missed <- t.missed + skipped;
      Mutex.unlock t.lock;
      k := !k + skipped
    end
    else if now < next then Thread.delay (next -. now)
  done

let start t =
  match t.thread with
  | Some _ -> ()
  | None ->
      Atomic.set t.stop_flag false;
      t.thread <- Some (Thread.create loop t)

let stop t =
  Atomic.set t.stop_flag true;
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None

(* ------------------------------------------------------------------ *)
(* JSON rendering (the /statz body and the recorder's series section)  *)
(* ------------------------------------------------------------------ *)

(* [last] bounds the history per series (the flight recorder wants the
   last K samples, /statz the whole ring). Points are [t, v] pairs;
   NaN (a failed poll) renders as null. *)
let to_json ?last t =
  let n = sample_count t in
  let keep = match last with Some k -> min k n | None -> n in
  let series_json s =
    let pts = samples t s in
    let pts =
      if keep >= List.length pts then pts
      else List.filteri (fun i _ -> i >= List.length pts - keep) pts
    in
    Json.Obj
      [ ("name", Json.Str s.sr_name);
        ("kind", Json.Str (kind_of s.sr_source));
        ( "points",
          Json.List
            (List.map
               (fun (ts, v) ->
                 Json.List [ Json.float ~prec:3 ts; Json.float ~prec:6 v ])
               pts) ) ]
  in
  Json.Obj
    [ ("period_s", Json.float ~prec:3 t.period_s);
      ("samples", Json.Int keep);
      ("total_ticks", Json.Int (total_ticks t));
      ("missed_deadlines", Json.Int (missed_deadlines t));
      ("series", Json.List (List.map series_json (list t))) ]
