(* Structured event log with severity levels and pluggable sinks.

   An event is a timestamped message plus key/value fields; sinks
   decide where it goes (stderr, a file, a bounded in-memory ring).
   With no sink installed, or below the threshold level, emission is a
   couple of comparisons and no allocation — instrumented code can log
   unconditionally.

   The formatting variants ([debugf] .. [errorf]) run Printf before the
   level check, so guard hot paths with [enabled] or use the
   plain-string [emit]. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  ev_time : float;  (* Unix epoch seconds *)
  ev_level : level;
  ev_msg : string;
  ev_fields : (string * string) list;
}

type sink = event -> unit

let threshold = ref Warn
let set_level l = threshold := l
let level () = !threshold

let sinks : (int * sink) list ref = ref []
let next_sink_id = ref 0

let enabled l = level_rank l >= level_rank !threshold && !sinks <> []

let add_sink f =
  incr next_sink_id;
  sinks := (!next_sink_id, f) :: !sinks;
  !next_sink_id

let remove_sink id = sinks := List.filter (fun (i, _) -> i <> id) !sinks
let clear_sinks () = sinks := []

let emit lvl ?(fields = []) msg =
  if enabled lvl then begin
    let e =
      { ev_time = Unix.gettimeofday ();
        ev_level = lvl;
        ev_msg = msg;
        ev_fields = fields }
    in
    (* a broken sink must never take the pipeline down with it *)
    List.iter (fun (_, f) -> try f e with _ -> ()) !sinks
  end

let debug ?fields fmt = Printf.ksprintf (fun s -> emit Debug ?fields s) fmt
let info ?fields fmt = Printf.ksprintf (fun s -> emit Info ?fields s) fmt
let warn ?fields fmt = Printf.ksprintf (fun s -> emit Warn ?fields s) fmt
let error ?fields fmt = Printf.ksprintf (fun s -> emit Error ?fields s) fmt

(* ------------------------------------------------------------------ *)
(* Rendering and the built-in sinks                                    *)
(* ------------------------------------------------------------------ *)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* logfmt-style one-liner: ts=... level=... msg="..." key="value" ... *)
let render e =
  let tm = Unix.gmtime e.ev_time in
  let frac = e.ev_time -. Float.of_int (int_of_float e.ev_time) in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "ts=%04d-%02d-%02dT%02d:%02d:%02d.%03dZ level=%s msg=%s"
       (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
       tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
       (int_of_float (frac *. 1000.0))
       (level_to_string e.ev_level)
       (quote e.ev_msg));
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (quote v))
    e.ev_fields;
  Buffer.contents buf

let stderr_sink () e =
  output_string stderr (render e);
  output_char stderr '\n';
  flush stderr

(* Appends rendered events to [path]; the channel stays open for the
   process lifetime, flushed per event so a crash loses at most the
   event in flight. *)
let file_sink path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  fun e ->
    output_string oc (render e);
    output_char oc '\n';
    flush oc

(* Bounded in-memory ring: keeps the [cap] most recent events. Returns
   the sink and a reader yielding retained events oldest-first. *)
let ring_sink cap =
  if cap <= 0 then invalid_arg "Event.ring_sink: capacity must be positive";
  let buf = Array.make cap None in
  let total = ref 0 in
  let sink e =
    buf.(!total mod cap) <- Some e;
    incr total
  in
  let read () =
    let n = min !total cap in
    let lo = !total - n in
    List.init n (fun i ->
        match buf.((lo + i) mod cap) with
        | Some e -> e
        | None -> assert false)
  in
  (sink, read)
