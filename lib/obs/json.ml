(* Deterministic JSON emission, shared by bench artifacts, the flight
   recorder, the admin plane's /statz and /connz, and `icdb stats
   --json`.

   Objects render their fields in exactly the order given, floats
   render at an explicit fixed precision, and nothing here consults the
   clock or any hash table — the same values always produce
   byte-identical text, so one parser (CI's python3 json.tool, or the
   tests' structural validator) serves every machine-readable surface. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of { v : float; prec : int }
  | Str of string
  | List of t list
  | Obj of (string * t) list

let float ?(prec = 6) v = Float { v; prec }

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render buf level v =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float { v; prec } -> (
      (* JSON has no nan/inf literals *)
      match Float.classify_float v with
      | FP_nan | FP_infinite -> Buffer.add_string buf "null"
      | _ -> Buffer.add_string buf (Printf.sprintf "%.*f" prec v))
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          render buf (level + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          render buf (level + 1) item)
        fields;
      Buffer.add_char buf '\n';
      pad level;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  render buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write ~path v =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc -> output_string oc (to_string v));
  Sys.rename tmp path
