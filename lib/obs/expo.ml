(* Prometheus text exposition and a zero-dependency HTTP/1.0 listener.

   [prometheus] renders a {!Metrics} registry in the Prometheus text
   exposition format (version 0.0.4): counters as [<name>_total],
   gauges as-is, and histograms as cumulative [_bucket{le="..."}]
   series with [_sum] and [_count]. Metric names are sanitized to the
   legal charset; label values are escaped per the spec.

   The HTTP side is deliberately tiny: an accept thread that answers
   one GET per connection and closes — exactly what a scraper, a
   load-balancer health check, or [curl] needs, with no framework and
   no keep-alive state machine. It is an *admin* endpoint: bind it to
   loopback (the default) or a management interface, not the world. *)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Legal metric names match [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
   (our dotted instrument names, dashes, ...) maps to '_'. *)
let sanitize_metric_name name =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  if name = "" then "_"
  else
    String.mapi
      (fun i c -> if (if i = 0 then ok_first c else ok c) then c else '_')
      name

(* Label values escape backslash, double quote and newline — the three
   characters the exposition format reserves inside ["..."]. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest float rendering that survives a round-trip; Prometheus
   accepts Go-style floats, and %.17g is always re-parseable. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let add_histogram buf (h : Metrics.histogram) =
  let name = sanitize_metric_name h.Metrics.hname in
  Printf.bprintf buf "# TYPE %s histogram\n" name;
  (* Cumulative counts at each occupied bucket's upper bound. Emitting
     only occupied buckets keeps a 140-slot log-scale histogram to a
     handful of lines per scrape; the boundaries remain strictly
     monotone because bucket index order is preserved. *)
  let cum = ref 0 in
  for i = 0 to Metrics.n_buckets - 1 do
    let n = h.Metrics.buckets.(i) in
    if n > 0 then begin
      cum := !cum + n;
      Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" name
        (float_str (Metrics.bucket_upper i))
        !cum
    end
  done;
  Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.hcount;
  Printf.bprintf buf "%s_sum %s\n" name (float_str h.Metrics.hsum);
  Printf.bprintf buf "%s_count %d\n" name h.Metrics.hcount

let prometheus ?(registry = Metrics.default) () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (c : Metrics.counter) ->
      let name = sanitize_metric_name c.Metrics.cname ^ "_total" in
      Printf.bprintf buf "# TYPE %s counter\n%s %d\n" name name c.Metrics.count)
    (Metrics.counters registry);
  List.iter
    (fun (g : Metrics.gauge) ->
      let name = sanitize_metric_name g.Metrics.gname in
      Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" name name
        (float_str g.Metrics.gvalue))
    (Metrics.gauges registry);
  List.iter (add_histogram buf) (Metrics.histograms registry);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Process-level gauges                                                *)
(* ------------------------------------------------------------------ *)

let process_started_at = Unix.gettimeofday ()

(* Open fds by counting /proc/self/fd entries (Linux); NaN where /proc
   is absent so the gauge renders but reads as unknown. *)
let open_fd_count () =
  match Sys.readdir "/proc/self/fd" with
  | entries ->
      (* the readdir itself holds one fd open; don't count it *)
      float_of_int (max 0 (Array.length entries - 1))
  | exception Sys_error _ -> Float.nan

(* Peak resident set from /proc/self/status VmHWM (kB); NaN elsewhere. *)
let max_rss_bytes () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_lines with
  | lines -> (
      let prefix = "VmHWM:" in
      match
        List.find_opt
          (fun l ->
            String.length l >= String.length prefix
            && String.sub l 0 (String.length prefix) = prefix)
          lines
      with
      | Some line -> (
          let fields =
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          in
          match fields with
          | _ :: kb :: _ -> (
              match float_of_string_opt kb with
              | Some v -> v *. 1024.0
              | None -> Float.nan)
          | _ -> Float.nan)
      | None -> Float.nan)
  | exception Sys_error _ -> Float.nan

let g_uptime = Metrics.gauge "process.uptime_seconds"
let g_open_fds = Metrics.gauge "process.open_fds"
let g_max_rss = Metrics.gauge "process.max_rss_bytes"

(* Refresh the three process gauges; called at serve start, on each
   telemetry-sampler tick, and before every /metrics render so scrapes
   see live values even with the sampler disabled. *)
let update_process_gauges () =
  Metrics.set g_uptime (Unix.gettimeofday () -. process_started_at);
  Metrics.set g_open_fds (open_fd_count ());
  Metrics.set g_max_rss (max_rss_bytes ())

(* ------------------------------------------------------------------ *)
(* HTTP/1.0 listener                                                   *)
(* ------------------------------------------------------------------ *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body =
  { status; content_type = "text/plain; version=0.0.4; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

(* [handler path] answers [Some response] or [None] for 404. It runs on
   the listener thread, so it must not block indefinitely. *)
type handler = string -> response option

type http = {
  listen_fd : Unix.file_descr;
  http_port : int;
  stop_flag : bool Atomic.t;
  mutable accept_th : Thread.t option;
}

let status_text = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      status (status_text status) content_type (String.length body)
  in
  let all = head ^ body in
  let rec go off =
    if off < String.length all then
      match Unix.write_substring fd all off (String.length all - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Read until the end of the request head (blank line) or 8 KiB,
   whichever comes first; a scraper's GET fits in one segment, and
   anything that doesn't is not traffic we serve. *)
let read_head fd =
  let max_head = 8192 in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > max_head then None
    else
      let s = Buffer.contents buf in
      let have_head =
        let rec find i =
          i + 3 < String.length s
          && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
               && s.[i + 3] = '\n')
              || find (i + 1))
        in
        find 0
        || (let rec find_lf i =
              i + 1 < String.length s
              && ((s.[i] = '\n' && s.[i + 1] = '\n') || find_lf (i + 1))
            in
            find_lf 0)
      in
      if have_head then Some s
      else
        match Unix.select [ fd ] [] [] 5.0 with
        | [], _, _ -> None (* slow peer: give up *)
        | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let parse_request_line head =
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.trim (String.sub head 0 i)
    | None -> String.trim head
  in
  match String.split_on_char ' ' line with
  | meth :: path :: _ -> Some (meth, path)
  | _ -> None

let serve_one handler fd =
  match read_head fd with
  | None -> ()
  | Some head -> (
      match parse_request_line head with
      | None -> write_response fd (text ~status:405 "bad request\n")
      | Some (meth, _) when meth <> "GET" && meth <> "HEAD" ->
          write_response fd (text ~status:405 "only GET is served here\n")
      | Some (_, path) -> (
          (* strip any query string: /metrics?x=y scrapes /metrics *)
          let path =
            match String.index_opt path '?' with
            | Some i -> String.sub path 0 i
            | None -> path
          in
          match (try handler path with _ -> Some (text ~status:500 "handler error\n")) with
          | Some resp -> write_response fd resp
          | None -> write_response fd (text ~status:404 "no such endpoint\n")))

let accept_loop t handler =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ -> (
           match Unix.accept ~cloexec:true t.listen_fd with
           | exception
               Unix.Unix_error
                 ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                  | Unix.ECONNABORTED), _, _) ->
               ()
           | fd, _ ->
               Fun.protect
                 ~finally:(fun () ->
                   try Unix.close fd with Unix.Unix_error _ -> ())
                 (fun () ->
                   try serve_one handler fd
                   with Unix.Unix_error _ | Sys_error _ -> ())));
      loop ()
    end
  in
  loop ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let http_start ?(host = "127.0.0.1") ~port handler =
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let http_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    { listen_fd; http_port; stop_flag = Atomic.make false; accept_th = None }
  in
  t.accept_th <- Some (Thread.create (fun () -> accept_loop t handler) ());
  t

let http_port t = t.http_port

let http_stop t =
  Atomic.set t.stop_flag true;
  match t.accept_th with Some th -> Thread.join th | None -> ()

(* ------------------------------------------------------------------ *)
(* A matching one-shot client (tests, benches, CLI probes)             *)
(* ------------------------------------------------------------------ *)

(* GET [path] and return (status, body). Raises [Unix.Unix_error] on
   connection failure and [Failure] on an unparseable response. *)
let http_get ?(host = "127.0.0.1") ~port path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let header_end =
        let rec find i =
          if i + 3 >= String.length raw then None
          else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
                  && raw.[i + 3] = '\n'
          then Some (i + 4)
          else find (i + 1)
        in
        find 0
      in
      match header_end with
      | None -> failwith "http_get: no header terminator in response"
      | Some body_at ->
          let status =
            match String.split_on_char ' ' raw with
            | _ :: code :: _ -> (
                match int_of_string_opt code with
                | Some s -> s
                | None -> failwith "http_get: bad status line")
            | _ -> failwith "http_get: bad status line"
          in
          (status, String.sub raw body_at (String.length raw - body_at)))
