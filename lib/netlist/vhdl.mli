(** Structural VHDL: the netlist interchange format of the Figure 8
    generation path. The writer serves the §3.3 [VHDL_net_list] /
    [VHDL_head] queries; the parser reads the subset the partitioner
    uses to hand ICDB a cluster of component instances (§6.3). *)

exception Vhdl_error of string

val sanitize : string -> string
(** Make a net name a legal VHDL identifier (brackets, '$', '.' become
    underscores). *)

(** {1 Writer} *)

val entity_of : Netlist.t -> string
(** Entity declaration only (the VHDL_head query). *)

val architecture_of : Netlist.t -> string
(** Structural architecture: component declarations, signals, one
    instantiation per cell (drive sizes recorded as comments). *)

val to_vhdl : Netlist.t -> string
(** Entity followed by architecture. *)

val dump : Netlist.t -> string
(** {!to_vhdl} followed by a machine-readable "--#" comment trailer
    that encodes the netlist exactly (original net names, drive sizes).
    This is what the server persists to workspace [.vhdl] files so crash
    recovery can reconstruct instances bit-for-bit.
    @raise Vhdl_error if a name contains trailer separator characters. *)

val undump : string -> Netlist.t
(** Reconstruct the exact netlist from a {!dump} trailer (the VHDL text
    above it is ignored). @raise Vhdl_error on a missing or malformed
    trailer. *)

(** {1 Parser (structural subset)} *)

type parsed_instance = {
  pi_label : string;
  pi_component : string;
  pi_ports : (string * string) list;  (** formal -> actual net *)
}

type parsed = {
  p_name : string;
  p_inputs : string list;
  p_outputs : string list;
  p_instances : parsed_instance list;
}

val parse : string -> parsed
(** Parse [entity ... port (...); end ...; architecture ... begin
    label: comp port map (f => a, ...); ... end ...;]. Port names are
    flattened bit nets; "--" comments are skipped.
    @raise Vhdl_error on unsupported or malformed input. *)

val flatten :
  parsed -> resolve:(string -> Netlist.t option) -> Netlist.t
(** Inline each instance's component netlist (looked up by [resolve]),
    connecting ports per the port map and prefixing internal nets with
    the instance label.
    @raise Vhdl_error on unknown components or unconnected ports. *)
