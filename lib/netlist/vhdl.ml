(* Structural VHDL: the netlist interchange format of the generation
   path (Figure 8). The writer emits an entity/architecture pair for a
   gate netlist (used by synthesis tools to simulate the result, §3.3);
   the parser reads the subset the partitioner uses to hand ICDB a
   cluster of component instances (§6.3). *)

exception Vhdl_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Vhdl_error s)) fmt

(* Net names like Q[3] or $m1 are legal IIF but not VHDL identifiers. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | '[' | ']' | '$' | '.' -> '_'
      | c -> c)
    name
  |> fun s ->
  if String.length s > 0 && s.[0] = '_' then "n" ^ s else s

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

(* Entity declaration only (the VHDL_head query of §3.3). *)
let entity_of (nl : Netlist.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "entity %s is\n  port (\n" (sanitize nl.Netlist.name));
  let ports =
    List.map (fun n -> (n, "in")) nl.Netlist.inputs
    @ List.map (fun n -> (n, "out")) nl.Netlist.outputs
  in
  List.iteri
    (fun i (n, dir) ->
      Buffer.add_string buf
        (Printf.sprintf "    %s : %s bit%s\n" (sanitize n) dir
           (if i = List.length ports - 1 then "" else ";")))
    ports;
  Buffer.add_string buf "  );\n";
  Buffer.add_string buf (Printf.sprintf "end %s;\n" (sanitize nl.Netlist.name));
  Buffer.contents buf

let architecture_of (nl : Netlist.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "architecture netlist of %s is\n" (sanitize nl.Netlist.name));
  (* component declarations, one per distinct cell *)
  let cells = List.sort_uniq compare (List.map (fun i -> i.Netlist.cell) nl.Netlist.instances) in
  List.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "  component %s end component;\n" c))
    cells;
  (* internal signals *)
  let io = nl.Netlist.inputs @ nl.Netlist.outputs in
  let internal =
    List.filter (fun n -> not (List.mem n io)) (Netlist.nets nl)
  in
  if internal <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  signal %s : bit;\n"
         (String.concat ", " (List.map sanitize internal)));
  Buffer.add_string buf "begin\n";
  List.iter
    (fun (i : Netlist.instance) ->
      let maps =
        String.concat ", "
          (List.map (fun (p, n) -> Printf.sprintf "%s => %s" p (sanitize n)) i.conns)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s port map (%s);  -- size %.2f\n"
           i.inst_name i.cell maps i.size))
    nl.Netlist.instances;
  Buffer.add_string buf "end netlist;\n";
  Buffer.contents buf

let to_vhdl nl = entity_of nl ^ "\n" ^ architecture_of nl

(* ------------------------------------------------------------------ *)
(* Exact persistence (workspace .vhdl files)                           *)
(* ------------------------------------------------------------------ *)

(* The sanitized entity/architecture text is what external tools read,
   but it does not round-trip: names are sanitized and drive sizes live
   in comments. Workspace files therefore carry a machine-readable
   trailer of "--#" comment lines (still legal VHDL) encoding the
   netlist exactly, which crash recovery reads back with [undump]. *)

let trailer_field what s =
  if String.contains s '\t' || String.contains s '\n' || String.contains s ','
     || String.contains s '=' then
    fail "%s %S not representable in a netlist trailer" what s;
  s

let dump nl =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (to_vhdl nl);
  Buffer.add_string buf
    (Printf.sprintf "--#name\t%s\n" (trailer_field "name" nl.Netlist.name));
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "--#in\t%s\n" (trailer_field "net" n)))
    nl.Netlist.inputs;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "--#out\t%s\n" (trailer_field "net" n)))
    nl.Netlist.outputs;
  List.iter
    (fun (i : Netlist.instance) ->
      Buffer.add_string buf
        (Printf.sprintf "--#inst\t%s\t%s\t%h\t%s\n"
           (trailer_field "instance" i.Netlist.inst_name)
           (trailer_field "cell" i.Netlist.cell)
           i.Netlist.size
           (String.concat ","
              (List.map
                 (fun (p, n) ->
                   trailer_field "pin" p ^ "=" ^ trailer_field "net" n)
                 i.Netlist.conns))))
    nl.Netlist.instances;
  Buffer.contents buf

let undump src =
  let name = ref None in
  let inputs = ref [] and outputs = ref [] and instances = ref [] in
  let parse_conns s =
    if s = "" then []
    else
      String.split_on_char ',' s
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | Some i ->
                 (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
             | None -> fail "malformed connection %S in netlist trailer" kv)
  in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         if String.length line > 3 && String.sub line 0 3 = "--#" then
           let body = String.sub line 3 (String.length line - 3) in
           match String.split_on_char '\t' body with
           | [ "name"; n ] -> name := Some n
           | [ "in"; n ] -> inputs := n :: !inputs
           | [ "out"; n ] -> outputs := n :: !outputs
           | [ "inst"; label; cell; size; conns ] ->
               let size =
                 match float_of_string_opt size with
                 | Some s -> s
                 | None -> fail "malformed size %S in netlist trailer" size
               in
               instances :=
                 { Netlist.inst_name = label; cell; size;
                   conns = parse_conns conns }
                 :: !instances
           | _ -> fail "malformed netlist trailer line %S" line);
  match !name with
  | None -> fail "missing netlist trailer (--# lines)"
  | Some name ->
      { Netlist.name;
        inputs = List.rev !inputs;
        outputs = List.rev !outputs;
        instances = List.rev !instances }

(* ------------------------------------------------------------------ *)
(* Parser (structural subset)                                          *)
(* ------------------------------------------------------------------ *)

(* Parsed cluster netlist: instances of named components with
   formal => actual port maps. Actuals and formals are plain
   identifiers (already flattened to bit nets). *)

type parsed_instance = {
  pi_label : string;
  pi_component : string;
  pi_ports : (string * string) list;  (* formal -> actual net *)
}

type parsed = {
  p_name : string;
  p_inputs : string list;
  p_outputs : string list;
  p_instances : parsed_instance list;
}

type token = Id of string | Sym of char

let tokenize_vhdl src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '[' || c = ']' || c = '$'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_id c then begin
      let j = ref !i in
      while !j < n && is_id src.[!j] do incr j done;
      toks := Id (String.sub src !i (!j - !i)) :: !toks;
      i := !j
    end
    else begin
      (match c with
       | '(' | ')' | ':' | ';' | ',' | '=' | '>' | '.' -> toks := Sym c :: !toks
       | c -> fail "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !toks

let kw s k = String.lowercase_ascii s = k

(* Parse [entity NAME is port ( n : in bit; ... ); end NAME;
    architecture A of NAME is begin
      label: COMP port map (f => a, ...); ... end A;] *)
let parse src =
  let toks = ref (tokenize_vhdl src) in
  let peek () = match !toks with t :: _ -> Some t | [] -> None in
  let next () =
    match !toks with
    | t :: rest -> toks := rest; t
    | [] -> fail "unexpected end of VHDL"
  in
  let expect_sym c =
    match next () with
    | Sym s when s = c -> ()
    | Sym s -> fail "expected %C, found %C" c s
    | Id s -> fail "expected %C, found %s" c s
  in
  let ident () =
    match next () with
    | Id s -> s
    | Sym c -> fail "expected identifier, found %C" c
  in
  let expect_kw k =
    let s = ident () in
    if not (kw s k) then fail "expected %s, found %s" k s
  in
  expect_kw "entity";
  let name = ident () in
  expect_kw "is";
  expect_kw "port";
  expect_sym '(';
  let inputs = ref [] and outputs = ref [] in
  let rec ports () =
    (* names , ... : dir type *)
    let rec names acc =
      let n = ident () in
      match peek () with
      | Some (Sym ',') -> ignore (next ()); names (n :: acc)
      | _ -> List.rev (n :: acc)
    in
    let ns = names [] in
    expect_sym ':';
    let dir = ident () in
    let _ty = ident () in
    (match String.lowercase_ascii dir with
     | "in" -> inputs := !inputs @ ns
     | "out" -> outputs := !outputs @ ns
     | d -> fail "unsupported port direction %s" d);
    match next () with
    | Sym ';' -> ports ()
    | Sym ')' -> ()
    | Sym c -> fail "expected ; or ) in port list, found %C" c
    | Id s -> fail "expected ; or ) in port list, found %s" s
  in
  ports ();
  expect_sym ';';
  expect_kw "end";
  let _ = ident () in
  expect_sym ';';
  expect_kw "architecture";
  let _arch = ident () in
  expect_kw "of";
  let _ = ident () in
  expect_kw "is";
  (* skip declarations until begin *)
  let rec to_begin () =
    match next () with
    | Id s when kw s "begin" -> ()
    | _ -> to_begin ()
  in
  to_begin ();
  let instances = ref [] in
  let rec stmts () =
    match next () with
    | Id s when kw s "end" ->
        let _ = ident () in
        expect_sym ';'
    | Id label ->
        expect_sym ':';
        let comp = ident () in
        (* optional "entity"/"component" keyword before the name *)
        let comp =
          if kw comp "component" || kw comp "entity" then ident () else comp
        in
        expect_kw "port";
        expect_kw "map";
        expect_sym '(';
        let rec maps acc =
          let formal = ident () in
          expect_sym '=';
          expect_sym '>';
          let actual = ident () in
          match next () with
          | Sym ',' -> maps ((formal, actual) :: acc)
          | Sym ')' -> List.rev ((formal, actual) :: acc)
          | Sym c -> fail "expected , or ) in port map, found %C" c
          | Id s -> fail "expected , or ) in port map, found %s" s
        in
        let ports = maps [] in
        expect_sym ';';
        instances :=
          { pi_label = label; pi_component = comp; pi_ports = ports }
          :: !instances;
        stmts ()
    | Sym c -> fail "expected statement, found %C" c
  in
  stmts ();
  { p_name = name;
    p_inputs = !inputs;
    p_outputs = !outputs;
    p_instances = List.rev !instances }

(* ------------------------------------------------------------------ *)
(* Cluster flattening                                                  *)
(* ------------------------------------------------------------------ *)

(* Inline sub-netlists into one flat netlist: each parsed instance's
   component is resolved (by [resolve]) to a gate netlist whose ports
   are connected per the port map and whose internal nets are prefixed
   with the instance label. *)
let flatten parsed ~resolve =
  let instances = ref [] in
  List.iter
    (fun pi ->
      let sub : Netlist.t =
        match resolve pi.pi_component with
        | Some nl -> nl
        | None -> fail "unknown component %s in cluster" pi.pi_component
      in
      let io = sub.Netlist.inputs @ sub.Netlist.outputs in
      let rename net =
        match List.assoc_opt net pi.pi_ports with
        | Some actual -> actual
        | None ->
            if List.mem net io then
              fail "instance %s: port %s of %s not connected" pi.pi_label net
                pi.pi_component
            else pi.pi_label ^ "/" ^ net
      in
      List.iter
        (fun (i : Netlist.instance) ->
          instances :=
            { i with
              inst_name = pi.pi_label ^ "/" ^ i.inst_name;
              conns = List.map (fun (p, n) -> (p, rename n)) i.conns }
            :: !instances)
        sub.Netlist.instances)
    parsed.p_instances;
  { Netlist.name = parsed.p_name;
    inputs = parsed.p_inputs;
    outputs = parsed.p_outputs;
    instances = List.rev !instances }
